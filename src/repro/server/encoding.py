"""Compact binary result encoding: typed columnar frames (``colframe1``).

JSON serializes a 100k-row result as text — every integer re-printed in
decimal, every string re-quoted and re-escaped, every row wrapped in
brackets.  This module encodes the same result as one length-prefixed
**columnar frame**: per column a type tag, an optional null bitmap and a
packed value block, with integer columns narrowed to the smallest of
1/2/4/8 bytes that holds their range (an id column under 2^31 costs 4
bytes per row, a small measure column 2) and string columns stored as a
width-narrowed length array plus one UTF-8 blob.  Packing goes through
the :mod:`array` module so encode/decode run at C speed, and the whole
body is zlib-compressed when that shrinks it.

Frame layout (little-endian)::

    magic "CF1" | flags u8 | body
    body:  rows u32 | cols u16 | column*
    column: name_len u16 | name utf8 | type u8 | width u8 | colflags u8
            [null bitmap ceil(rows/8) bytes, LSB-first, 1 = null]
            values (type-specific, see _encode_column)

``flags`` bit 0 marks a zlib-compressed body.  ``colflags`` bit 0
marks a column with nulls, bit 1 a dictionary-encoded string column
(repetitive columns ship distinct values once plus a packed index
array — both directions run through C-speed ``map``).  Type codes:
0 int, 1 float, 2 str, 3 date (an int on the wire — day count),
4 bool, 5 json (per-column JSON fallback for mixed/exotic cells, so
*any* result row set round-trips).

The codec is negotiated per connection behind protocol version 3 (see
:mod:`repro.server.protocol`); version-1/2 clients keep the JSON row
encoding byte for byte.
"""

from __future__ import annotations

import json
import struct
import time
import zlib
from array import array
from itertools import accumulate
from operator import itemgetter

from repro.errors import ProtocolError
from repro.obs.metrics import get_registry

#: codec name stamped into response headers; bump on layout changes
CODEC = "colframe1"

MAGIC = b"CF1"
FLAG_ZLIB = 1

TYPE_INT = 0
TYPE_FLOAT = 1
TYPE_STR = 2
TYPE_DATE = 3
TYPE_BOOL = 4
TYPE_JSON = 5

_HEAD = struct.Struct("<3sB")
_BODY = struct.Struct("<IH")
_NAME = struct.Struct("<H")
_COL = struct.Struct("<BBB")

#: signed array typecode per width (int/date values)
_SIGNED = {1: "b", 2: "h", 4: "i", 8: "q"}
#: unsigned array typecode per width (string lengths, dict indices)
_UNSIGNED = {1: "B", 2: "H", 4: "I"}

FLAG_COL_NULLS = 1
FLAG_COL_DICT = 2

_FRAMES = get_registry().counter("encoding.binary.frames")
_ROWS = get_registry().counter("encoding.binary.rows")
_BYTES = get_registry().counter("encoding.binary.bytes")
_SECONDS = get_registry().histogram("encoding.binary.seconds")


def _int_width(lo: int, hi: int) -> int:
    for width, code in _SIGNED.items():
        bound = 1 << (8 * width - 1)
        if -bound <= lo and hi < bound:
            return width
    raise ProtocolError(f"integer {lo}..{hi} exceeds 8-byte encoding")


def _len_width(hi: int) -> int:
    for width in (1, 2, 4):
        if hi < 1 << (8 * width):
            return width
    raise ProtocolError(f"string of {hi} bytes exceeds length encoding")


def _bitmap(values: tuple) -> bytes:
    bits = bytearray((len(values) + 7) // 8)
    for index, value in enumerate(values):
        if value is None:
            bits[index >> 3] |= 1 << (index & 7)
    return bytes(bits)


def _column_type(kinds: set) -> int:
    """The narrowest type tag covering every non-null cell kind."""
    if not kinds:
        return TYPE_INT  # all-null column: packs as zero-width ints
    if kinds == {str}:
        return TYPE_STR
    if kinds == {bool}:
        return TYPE_BOOL
    if kinds <= {bool, int}:
        return TYPE_INT
    if kinds <= {bool, int, float}:
        return TYPE_FLOAT
    return TYPE_JSON


def _pack_strings(cells) -> tuple[int, bytes]:
    """Pack strings as a char-length array plus one UTF-8 blob.

    Lengths are in *characters* so the decoder can slice one decoded
    text instead of decoding per cell; the blob is length-prefixed
    because its byte count differs from the char count for non-ASCII.
    Returns ``(length_width, packed)``.
    """
    lengths = array("I", map(len, cells))
    width = _len_width(max(lengths) if lengths else 0)
    if width != 4:
        lengths = array(_UNSIGNED[width], lengths)
    blob = "".join(cells).encode("utf-8")
    return width, lengths.tobytes() + struct.pack("<I", len(blob)) + blob


def _unpack_strings(
    body: bytes, offset: int, count: int, width: int
) -> tuple[list[str], int]:
    """Inverse of :func:`_pack_strings`; returns ``(cells, offset)``."""
    lengths = array(_UNSIGNED[width])
    lengths.frombytes(body[offset : offset + width * count])
    offset += width * count
    (blob_len,) = struct.unpack_from("<I", body, offset)
    offset += 4
    text = body[offset : offset + blob_len].decode("utf-8")
    offset += blob_len
    # slice the single decoded text at C speed: accumulate the char
    # lengths into offsets, then map slice objects over it
    ends = list(accumulate(lengths))
    starts = [0]
    starts.extend(ends[:-1])
    return list(map(text.__getitem__, map(slice, starts, ends))), offset


def _encode_column(
    name: str, values: tuple, type_tag: int | None, json_default=None
) -> bytes:
    # one C-speed scan yields both the cell kinds and null presence;
    # the per-value Python loop this replaces dominated encode time
    kinds = set(map(type, values))
    has_nulls = type(None) in kinds
    kinds.discard(type(None))
    if type_tag is None:
        type_tag = _column_type(kinds)
    col_flags = FLAG_COL_NULLS if has_nulls else 0
    parts = []
    if type_tag in (TYPE_INT, TYPE_DATE):
        cells = (
            [0 if v is None else v for v in values] if has_nulls else values
        )
        width = _int_width(min(cells, default=0), max(cells, default=0))
        data = array(_SIGNED[width], cells).tobytes()
    elif type_tag == TYPE_FLOAT:
        width = 8
        cells = (
            [0.0 if v is None else v for v in values] if has_nulls else values
        )
        data = array("d", cells).tobytes()
    elif type_tag == TYPE_BOOL:
        width = 1
        data = bytes(1 if v else 0 for v in values)
    elif type_tag == TYPE_STR:
        cells = (
            ["" if v is None else v for v in values] if has_nulls else values
        )
        uniq = list(dict.fromkeys(cells))
        if 1 <= len(uniq) <= 0xFFFF and len(uniq) * 4 <= len(cells):
            # dictionary encoding: repetitive columns (statuses, names,
            # enum-ish values) ship each distinct string once plus a
            # packed index array; both sides stay in C-speed map calls
            col_flags |= FLAG_COL_DICT
            lookup = {value: index for index, value in enumerate(uniq)}
            width = 1 if len(uniq) <= 0xFF else 2
            indices = array(_UNSIGNED[width], map(lookup.__getitem__, cells))
            uniq_width, uniq_block = _pack_strings(uniq)
            data = (
                struct.pack("<IB", len(uniq), uniq_width)
                + uniq_block
                + indices.tobytes()
            )
        else:
            width, data = _pack_strings(cells)
    else:  # TYPE_JSON: anything goes, one JSON list for the column
        width = 0
        blob = json.dumps(
            list(values), separators=(",", ":"), default=json_default
        ).encode("utf-8")
        data = struct.pack("<I", len(blob)) + blob
        has_nulls = False  # nulls ride inside the JSON itself
    raw_name = name.encode("utf-8")
    parts.append(_NAME.pack(len(raw_name)) + raw_name)
    if not has_nulls:
        col_flags &= ~FLAG_COL_NULLS
    parts.append(_COL.pack(type_tag, width, col_flags))
    if has_nulls:
        parts.append(_bitmap(values))
    parts.append(data)
    return b"".join(parts)


def encode_result(
    rows: list,
    columns: list[str],
    types: list[int] | None = None,
    *,
    compress: bool = False,
    json_default=None,
) -> bytes:
    """Encode ``rows`` x ``columns`` as one ``colframe1`` frame.

    ``types`` optionally forces per-column type tags (e.g. ``TYPE_DATE``
    where the caller knows the schema); by default each column's tag is
    inferred from its values.  Cells the typed encodings cannot carry
    fall back to the per-column JSON encoding, so any result that the
    JSON protocol could ship round-trips here too; ``json_default`` is
    handed to that fallback's :func:`json.dumps` so callers can feed
    raw engine rows (XML cells and all) without a per-row conversion
    pass first — the typed columns never needed one.

    ``compress`` zlib-deflates the body when that shrinks it.  The raw
    columnar frame already runs ~3x smaller than the JSON rows, so the
    default trades the extra ~2.5x size cut for encode speed — right
    for a local socket; callers shipping results over a real network
    can opt in.  Decode handles both transparently via the flag bit.
    """
    started = time.perf_counter()
    count = len(rows)
    body = [_BODY.pack(count, len(columns))]
    for index, name in enumerate(columns):
        # itemgetter keeps the transpose in C and beats zip(*rows),
        # which pays for unpacking one argument per row
        column = tuple(map(itemgetter(index), rows)) if count else ()
        tag = types[index] if types else None
        body.append(_encode_column(name, column, tag, json_default))
    raw = b"".join(body)
    flags = 0
    if compress and len(raw) > 512:
        packed = zlib.compress(raw, 1)
        if len(packed) < len(raw):
            raw = packed
            flags |= FLAG_ZLIB
    frame = _HEAD.pack(MAGIC, flags) + raw
    _FRAMES.inc()
    _ROWS.inc(count)
    _BYTES.inc(len(frame))
    _SECONDS.observe(time.perf_counter() - started)
    return frame


def decode_result(frame: bytes) -> tuple[list[str], list[list]]:
    """Decode a ``colframe1`` frame back to ``(columns, rows)``.

    Rows come back as tuples (like engine-side results); date columns
    come back as the int day counts the engine stores.
    """
    magic, flags = _HEAD.unpack_from(frame)
    if magic != MAGIC:
        raise ProtocolError(f"bad binary frame magic {magic!r}")
    body = frame[_HEAD.size :]
    if flags & FLAG_ZLIB:
        body = zlib.decompress(body)
    count, col_count = _BODY.unpack_from(body)
    offset = _BODY.size
    names: list[str] = []
    column_values: list[list] = []
    for _ in range(col_count):
        (name_len,) = _NAME.unpack_from(body, offset)
        offset += _NAME.size
        names.append(body[offset : offset + name_len].decode("utf-8"))
        offset += name_len
        type_tag, width, col_flags = _COL.unpack_from(body, offset)
        offset += _COL.size
        has_nulls = col_flags & FLAG_COL_NULLS
        bitmap = b""
        if has_nulls:
            size = (count + 7) // 8
            bitmap = body[offset : offset + size]
            offset += size
        if type_tag in (TYPE_INT, TYPE_DATE):
            values = array(_SIGNED[width])
            values.frombytes(body[offset : offset + width * count])
            offset += width * count
            cells = values.tolist()
        elif type_tag == TYPE_FLOAT:
            values = array("d")
            values.frombytes(body[offset : offset + 8 * count])
            offset += 8 * count
            cells = values.tolist()
        elif type_tag == TYPE_BOOL:
            cells = [bool(b) for b in body[offset : offset + count]]
            offset += count
        elif type_tag == TYPE_STR:
            if col_flags & FLAG_COL_DICT:
                uniq_count, uniq_width = struct.unpack_from(
                    "<IB", body, offset
                )
                offset += 5
                uniq, offset = _unpack_strings(
                    body, offset, uniq_count, uniq_width
                )
                indices = array(_UNSIGNED[width])
                indices.frombytes(body[offset : offset + width * count])
                offset += width * count
                cells = list(map(uniq.__getitem__, indices))
            else:
                cells, offset = _unpack_strings(body, offset, count, width)
        elif type_tag == TYPE_JSON:
            (blob_len,) = struct.unpack_from("<I", body, offset)
            offset += 4
            cells = json.loads(body[offset : offset + blob_len])
            offset += blob_len
        else:
            raise ProtocolError(f"unknown column type tag {type_tag}")
        if has_nulls:
            for index in range(count):
                if bitmap[index >> 3] & (1 << (index & 7)):
                    cells[index] = None
        column_values.append(cells)
    rows = list(zip(*column_values)) if col_count else []
    if col_count and len(rows) != count:
        raise ProtocolError(
            f"frame declared {count} rows, decoded {len(rows)}"
        )
    return names, rows


__all__ = [
    "CODEC",
    "TYPE_BOOL",
    "TYPE_DATE",
    "TYPE_FLOAT",
    "TYPE_INT",
    "TYPE_JSON",
    "TYPE_STR",
    "decode_result",
    "encode_result",
]
