"""Bitemporal data management (paper Section 9's first generalization).

A contracts ledger where each fact has a *valid-time* interval (when the
rate applied in the real world) and ArchIS supplies *transaction time*
(when we believed it).  Corrections never destroy superseded beliefs, so
"what did we believe in February about August?" stays answerable forever.

Run:  python examples/bitemporal_contracts.py
"""

from repro.archis import ArchIS, ArchISConfig
from repro.archis.bitemporal import BitemporalArchive
from repro.rdb import ColumnType, Database
from repro.xmlkit import serialize


def main() -> None:
    db = Database()
    db.set_date("2000-01-01")
    archis = ArchIS(db, config=ArchISConfig(profile="db2", umin=None))
    contracts = BitemporalArchive(
        archis, "contract", key="customer",
        attributes={"rate": ColumnType.INT},
    )

    # January: we record that customer 7 pays 100 for all of 2000.
    sid = contracts.assert_fact(
        7, {"rate": 100}, vstart="2000-01-01", vend="2000-12-31"
    )

    # March: audit discovers the rate rises to 120 from July onward.
    db.set_date("2000-03-01")
    contracts.correct_fact(sid, {"vend": "2000-06-30"})
    contracts.assert_fact(
        7, {"rate": 120}, vstart="2000-07-01", vend="2000-12-31"
    )

    print("== every belief ever held (fact versions) ==")
    for fact in contracts.facts():
        print(
            f"  customer={fact.key} rate={fact.values[0]} "
            f"valid={fact.valid} believed={fact.transaction}"
        )

    print("\n== what is the rate valid on 2000-08-15 (current belief)? ==")
    for fact in contracts.valid_at("2000-08-15"):
        print(f"  rate {fact.values[0]}")

    print("\n== what did we believe in February about 2000-08-15? ==")
    for fact in contracts.valid_at("2000-08-15", tt="2000-02-01"):
        print(f"  rate {fact.values[0]}  (superseded on 2000-03-01)")

    print("\n== the bitemporal document (4 timestamps per fact) ==")
    print(serialize(contracts.publish(), indent=2))

    print("\n== XQuery across both axes ==")
    out = contracts.xquery(
        'for $c in doc("contracts.xml")/contracts/contract'
        '[tend(.) = current-date() and @vstart <= "2000-08-15" '
        'and @vend >= "2000-08-15"] return $c/rate'
    )
    print("  currently-believed rate for 2000-08-15:", out[0].text())


if __name__ == "__main__":
    main()
