"""The paper's Section 4 queries, end to end.

Builds the Table 1 / Table 2 example database (employees + departments),
archives it with ArchIS, and runs all eight example queries — temporal
projection, snapshot, slicing, join, aggregate, restructuring, since, and
period containment.  Queries outside the SQL/XML-translatable subset fall
back to native XQuery evaluation over the published views automatically.

Run:  python examples/employee_history.py
"""

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database
from repro.xmlkit import serialize


def build() -> ArchIS:
    db = Database()
    db.set_date("1992-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
            ("title", ColumnType.VARCHAR),
            ("deptno", ColumnType.VARCHAR),
        ],
        primary_key=("id",),
    )
    db.create_table(
        "dept",
        [
            ("deptid", ColumnType.INT),
            ("deptno", ColumnType.VARCHAR),
            ("deptname", ColumnType.VARCHAR),
            ("mgrno", ColumnType.INT),
        ],
        primary_key=("deptid",),
    )
    archis = ArchIS(db, config=ArchISConfig(profile="atlas"))
    archis.track_table("employee", document_name="employees.xml")
    archis.track_table("dept", key="deptid", document_name="depts.xml")

    dept = db.table("dept")
    db.set_date("1992-01-01")
    dept.insert((2, "d02", "RD", 3402))
    db.set_date("1993-01-01")
    dept.insert((3, "d03", "Sales", 4748))
    db.set_date("1994-01-01")
    dept.insert((1, "d01", "QA", 2501))

    emp = db.table("employee")
    db.set_date("1995-01-01")
    emp.insert((1001, "Bob", 60000, "Engineer", "d01"))
    db.set_date("1995-06-01")
    emp.update_where(lambda r: r["id"] == 1001, {"salary": 70000})
    db.set_date("1995-10-01")
    emp.update_where(
        lambda r: r["id"] == 1001, {"title": "Sr Engineer", "deptno": "d02"}
    )
    db.set_date("1996-02-01")
    emp.update_where(lambda r: r["id"] == 1001, {"title": "TechLeader"})
    db.set_date("1997-01-01")
    dept.update_where(lambda r: r["deptid"] == 2, {"mgrno": 1009})
    emp.delete_where(lambda r: r["id"] == 1001)
    db.set_date("1997-06-15")
    archis.apply_pending()
    return archis


def show(title: str, results: list) -> None:
    print(f"\n== {title} ==")
    if not results:
        print("  (empty)")
    for item in results:
        rendered = serialize(item) if hasattr(item, "name") else str(item)
        print(" ", rendered)


def main() -> None:
    archis = build()

    show(
        "QUERY 1 (temporal projection): Bob's title history",
        archis.xquery(
            'element title_history{ for $t in doc("employees.xml")/employees'
            '/employee[name="Bob"]/title return $t }'
        ),
    )
    show(
        "QUERY 2 (temporal snapshot): managers on 1994-05-06",
        archis.xquery(
            'for $m in doc("depts.xml")/depts/dept/mgrno'
            '[tstart(.)<=xs:date("1994-05-06") and '
            'tend(.) >= xs:date("1994-05-06")] return $m'
        ),
    )
    show(
        "QUERY 3 (temporal slicing): employees working in "
        "1994-05-06..1995-05-06",
        archis.xquery(
            'for $e in doc("employees.xml")/employees/employee[ toverlaps(.,'
            ' telement( xs:date("1994-05-06"), xs:date("1995-05-06") ) ) ]'
            " return $e/name"
        ),
    )
    show(
        "QUERY 4 (temporal join): who each manager managed (fallback path)",
        archis.xquery(
            'element manages{ for $d in doc("depts.xml")/depts/dept'
            " for $m in $d/mgrno return element manage {$d/deptno, $m,"
            ' element employees { for $e in doc("employees.xml")/employees'
            "/employee where $e/deptno = $d/deptno and"
            " not(empty(overlapinterval($e, $m)))"
            " return ($e/name, overlapinterval($e,$m)) }}}"
        ),
    )
    show(
        "QUERY 5 (temporal aggregate): history of the average salary",
        archis.xquery(
            'let $s := doc("employees.xml")/employees/employee/salary '
            "return tavg($s)"
        ),
    )
    show(
        "QUERY 6 (restructuring): Bob's longest period with unchanged "
        "title AND department",
        archis.xquery(
            'for $e in doc("employees.xml")/employees/employee[name="Bob"]'
            " let $d := $e/deptno let $t := $e/title"
            " let $overlaps := restructure($d, $t) return $overlaps"
        ),
    )
    show(
        "QUERY 7 (since): Sr Engineers in d02 since they joined it",
        archis.xquery(
            'for $e in doc("employees.xml")/employees/employee'
            ' let $m:= $e/title[.="Sr Engineer" and tend(.)=current-date()]'
            ' let $d:=$e/deptno[.="d02" and tcontains($m, .)]'
            " where not(empty($d)) and not(empty($m))"
            " return <employee>{$e/id, $e/name}</employee>"
        ),
    )
    show(
        "QUERY 8 (period containment): employees with exactly Bob's "
        "department history",
        archis.xquery(
            'for $e1 in doc("employees.xml")/employees/employee[name = "Bob"]'
            ' for $e2 in doc("employees.xml")/employees/employee'
            '[name != "Bob"]'
            " where (every $d1 in $e1/deptno satisfies some $d2 in $e2/deptno"
            " satisfies (string($d1)=string($d2) and tequals($d2,$d1))) and"
            " (every $d2 in $e2/deptno satisfies some $d1 in $e1/deptno"
            " satisfies (string($d2)=string($d1) and tequals($d1,$d2)))"
            " return <employee>{$e2/name}</employee>"
        ),
    )


if __name__ == "__main__":
    main()
