"""Multi-version XML document archiving (paper Section 9).

The paper closes by noting its timestamping scheme applies to "generic
multi-version XML documents ... e.g., the successive revision of XLink
standards, or, from the history of university catalogs, when a new course
was first introduced".  This example archives three yearly revisions of a
university catalog and asks exactly those evolution questions.

Run:  python examples/document_evolution.py
"""

from repro.archis.xmlversions import XmlVersionArchive
from repro.util.timeutil import format_date
from repro.xmlkit import parse_xml, serialize


CATALOG_2001 = """
<catalog>
  <course id="cs101"><title>Intro to CS</title><units>4</units></course>
  <course id="cs130"><title>Databases</title><units>4</units></course>
</catalog>
"""

CATALOG_2002 = """
<catalog>
  <course id="cs101"><title>Intro to CS</title><units>4</units></course>
  <course id="cs130"><title>Database Systems</title><units>4</units></course>
  <course id="cs188"><title>Temporal Databases</title><units>2</units></course>
</catalog>
"""

CATALOG_2003 = """
<catalog>
  <course id="cs130"><title>Database Systems</title><units>4</units></course>
  <course id="cs188"><title>Temporal Databases</title><units>4</units></course>
</catalog>
"""


def main() -> None:
    archive = XmlVersionArchive("catalog")
    archive.commit(parse_xml(CATALOG_2001), "2001-09-01")
    archive.commit(parse_xml(CATALOG_2002), "2002-09-01")
    archive.commit(parse_xml(CATALOG_2003), "2003-09-01")

    print("== the V-document (every node timestamped) ==")
    print(serialize(archive.vdocument(), indent=2))

    introduced = archive.first_appearance("title", "Temporal Databases")
    print(
        f"\n'Temporal Databases' was first introduced on "
        f"{format_date(introduced)}"
    )

    print("\n== courses in the current catalog (XQuery) ==")
    for course in archive.xquery(
        'for $c in doc("catalog.xml")/catalog/course'
        "[tend(.) = current-date()] return $c"
    ):
        print(" ", course.get("id"), "since", course.get("tstart"))

    print("\n== the catalog as it stood in spring 2002 (snapshot) ==")
    print(serialize(archive.snapshot("2002-03-15"), indent=2))

    print("\n== courses dropped at some point ==")
    for course in archive.xquery(
        'for $c in doc("catalog.xml")/catalog/course'
        '[tend(.) != current-date()] return $c'
    ):
        print(" ", course.get("id"), "removed after", course.get("tend"))


if __name__ == "__main__":
    main()
