"""BlockZIP compression demo (paper Section 8).

Generates a 17-year employee history, freezes segments, compresses the
archive with BlockZIP, and shows that (a) storage shrinks dramatically,
(b) snapshot queries still answer from a handful of decompressed blocks,
and (c) every query returns the same answers as before compression.

Run:  python examples/compression_demo.py
"""

from repro.bench import build_archis, default_queries, format_table
from repro.xmlkit import serialize


def main() -> None:
    generator, archis, _ = build_archis(
        employees=50, years=17, umin=0.4, min_segment_rows=512
    )
    queries = default_queries(generator)
    before_bytes = archis.storage_bytes()
    before_answers = {
        q.key: archis.xquery(q.xquery, allow_fallback=False) for q in queries
    }

    report = archis.compress_archive()
    print("== BlockZIP compression report ==")
    rows = [
        [info.table, info.rows_compressed, info.blocks]
        for info in report.values()
    ]
    print(format_table(["H-table", "rows compressed", "blocks"], rows))

    after_bytes = archis.storage_bytes()
    print(
        f"\narchive storage: {before_bytes:,} -> {after_bytes:,} bytes "
        f"({after_bytes / before_bytes:.0%})"
    )

    # block-granular access: a snapshot touches a fraction of the blocks
    segments = [s for s, _, _ in archis.segments.archived_segments()]
    info = archis.archive.compressed_tables["employee_salary"]
    one = archis.archive.blocks_touched("employee_salary", segments[:1])
    print(
        f"salary archive: {info.blocks} blocks total; a one-segment "
        f"snapshot decompresses only {one}"
    )

    # answers are unchanged
    def canon(seq):
        return [
            serialize(x) if hasattr(x, "name") else repr(x) for x in seq
        ]

    print("\n== answers before vs after compression ==")
    for query in queries:
        after = archis.xquery(query.xquery, allow_fallback=False)
        same = canon(after) == canon(before_answers[query.key])
        print(f"  {query.key}: {'identical' if same else 'DIVERGED!'}")
        assert same


if __name__ == "__main__":
    main()
