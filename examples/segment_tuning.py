"""Segment clustering tuning: the U_min storage/performance trade-off.

Replays the same employee history under several usefulness thresholds and
reports segments created, archive size (the Eq. 3 redundancy) and cold
snapshot latency — the paper's Fig. 7 / Fig. 9 trade-off on your data.

Run:  python examples/segment_tuning.py
"""

from repro.bench import (
    averaged,
    build_archis,
    format_table,
    run_archis_cold,
)
from repro.bench.queries import q2_snapshot_avg


def main() -> None:
    rows = []
    baseline_rows = None
    for umin in (None, 0.2, 0.3, 0.4, 0.5):
        generator, archis, _ = build_archis(
            employees=40, years=17, umin=umin, min_segment_rows=256
        )
        archive_rows = sum(
            archis.db.table(t).row_count
            for t in archis.relations["employee"].all_tables()
        )
        if umin is None:
            baseline_rows = archive_rows
        snapshot = q2_snapshot_avg(generator.mid_history_date())
        cost = averaged(lambda: run_archis_cold(archis, snapshot), 3)
        rows.append(
            [
                "off" if umin is None else f"{umin:.1f}",
                archis.segments.segment_count(),
                archive_rows,
                f"{archive_rows / baseline_rows:.2f}",
                "-" if umin is None else f"{1/(1-umin):.2f}",
                f"{cost.seconds*1000:.1f}",
                cost.physical_reads,
            ]
        )
    print(
        format_table(
            [
                "U_min", "segments", "archive rows", "ratio vs no-seg",
                "Eq.3 bound", "snapshot ms", "phys reads",
            ],
            rows,
        )
    )
    print(
        "\nHigher U_min: more segments, more redundant copies (bounded by"
        " 1/(1-U)), but snapshot queries touch only their own segment."
    )


if __name__ == "__main__":
    main()
