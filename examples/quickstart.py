"""Quickstart: a transaction-time temporal database in a few lines.

Creates a current table, attaches ArchIS, makes some changes, and asks
temporal questions in XQuery over the (virtual) XML view of the history.

Run:  python examples/quickstart.py
"""

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database
from repro.xmlkit import serialize


def main() -> None:
    # 1. An ordinary relational database with a current table.
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
            ("title", ColumnType.VARCHAR),
            ("deptno", ColumnType.VARCHAR),
        ],
        primary_key=("id",),
    )

    # 2. Attach ArchIS: from now on every change is archived.
    archis = ArchIS(db, config=ArchISConfig(profile="atlas", umin=0.4))
    archis.track_table("employee", document_name="employees.xml")

    # 3. Live with the data: ordinary inserts, updates, deletes.
    emp = db.table("employee")
    emp.insert((1001, "Bob", 60000, "Engineer", "d01"))
    db.set_date("1995-06-01")
    emp.update_where(lambda r: r["id"] == 1001, {"salary": 70000})
    db.set_date("1995-10-01")
    emp.update_where(
        lambda r: r["id"] == 1001, {"title": "Sr Engineer", "deptno": "d02"}
    )
    db.set_date("1996-02-01")
    emp.update_where(lambda r: r["id"] == 1001, {"title": "TechLeader"})

    # 4. The history is an XML view (paper Figure 3): look at it.
    print("== the H-document (temporally grouped history) ==")
    print(serialize(archis.publish("employee"), indent=2))

    # 5. Ask temporal questions in XQuery; ArchIS translates them to
    #    SQL/XML over the H-tables.
    print("\n== QUERY: Bob's title history (temporal projection) ==")
    for element in archis.xquery(
        'for $t in doc("employees.xml")/employees/employee[name="Bob"]/title '
        "return $t"
    ):
        print(" ", serialize(element))

    print("\n== QUERY: Bob's salary on 1995-07-15 (snapshot) ==")
    for element in archis.xquery(
        'for $s in doc("employees.xml")/employees/employee[name="Bob"]'
        '/salary[tstart(.) <= xs:date("1995-07-15") and '
        'tend(.) >= xs:date("1995-07-15")] return $s'
    ):
        print(" ", serialize(element))

    print("\n== the SQL/XML the translator emitted for the snapshot ==")
    print(
        archis.translate(
            'for $s in doc("employees.xml")/employees/employee[name="Bob"]'
            '/salary[tstart(.) <= xs:date("1995-07-15") and '
            'tend(.) >= xs:date("1995-07-15")] return $s'
        )
    )


if __name__ == "__main__":
    main()
