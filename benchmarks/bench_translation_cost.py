"""Section 7.1, query translation cost.

Paper: "For each of the 6 example queries in XQuery, the translation cost
is less than 0.1ms."  Our translator is pure Python, so we assert a looser
absolute bound and — the real shape — that translation is orders of
magnitude cheaper than execution.
"""

import time

from repro.bench import run_archis_cold


def translation_seconds(archis, query, repeats=50):
    start = time.perf_counter()
    for _ in range(repeats):
        archis.translate(query.xquery)
    return (time.perf_counter() - start) / repeats


def test_translation_under_a_millisecond(setup_atlas, queries):
    rows = []
    for query in queries:
        per = translation_seconds(setup_atlas.archis, query)
        rows.append((query.key, per))
        assert per < 0.002, f"{query.key}: translation took {per*1000:.3f} ms"
    table = "\n".join(f"  {k}: {v*1000:.3f} ms" for k, v in rows)
    print(
        "\n== translation cost per query (paper: < 0.1 ms) ==\n" + table
    )


def test_translation_much_cheaper_than_execution(setup_atlas, queries):
    for query in queries:
        translate_cost = translation_seconds(setup_atlas.archis, query, 20)
        execute_cost = run_archis_cold(setup_atlas.archis, query).seconds
        assert translate_cost < execute_cost, (
            f"{query.key}: translation ({translate_cost:.6f}s) should be "
            f"cheaper than execution ({execute_cost:.6f}s)"
        )


def test_q1_translation(benchmark, setup_atlas, queries):
    benchmark(lambda: setup_atlas.archis.translate(queries[0].xquery))


def test_q6_translation(benchmark, setup_atlas, queries):
    benchmark(lambda: setup_atlas.archis.translate(queries[6].xquery))
