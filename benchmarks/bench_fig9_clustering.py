"""Fig. 9: query performance with vs without segment-based clustering.

Paper (ArchIS-ATLaS): snapshot Q2 ~5.7x and slicing Q5 ~5.5x faster with
clustering; temporal join Q6 ~1.7x; single-object Q1/Q3 roughly equal
(B+ tree on id already works); whole-history Q4 *slower* with clustering
because of the scan over redundant copies.
"""

from repro.bench import (
    compare_engines,
    format_table,
    run_archis_cold,
    averaged,
)
from repro.bench.harness import Measurement


def measure(setup, queries, repeats=3):
    return {
        q.key: averaged(
            lambda q=q: run_archis_cold(setup.archis, q), repeats
        )
        for q in queries
    }


def test_fig9_table(setup_atlas, setup_unsegmented, queries):
    clustered = measure(setup_atlas, queries)
    unclustered = measure(setup_unsegmented, queries)
    rows = []
    for q in queries:
        c = clustered[q.key]
        u = unclustered[q.key]
        rows.append(
            [
                q.key,
                f"{u.seconds * 1000:.1f}",
                f"{c.seconds * 1000:.1f}",
                f"{u.seconds / max(c.seconds, 1e-9):.2f}x",
                u.physical_reads,
                c.physical_reads,
            ]
        )
    print(
        "\n== Fig. 9: with vs without segment clustering (ArchIS-ATLaS) ==\n"
        + format_table(
            [
                "query", "no-cluster ms", "clustered ms", "cluster speedup",
                "no-cluster reads", "clustered reads",
            ],
            rows,
        )
        + "\npaper: Q2 ~5.7x, Q5 ~5.5x, Q6 ~1.7x faster clustered; Q4 slower"
    )
    # shape assertions
    assert clustered["Q2"].physical_reads <= unclustered["Q2"].physical_reads, (
        "snapshot should touch no more pages with clustering"
    )
    assert clustered["Q2"].seconds <= unclustered["Q2"].seconds * 1.5, (
        "snapshot must not regress with clustering"
    )


def test_history_query_pays_for_redundancy(setup_atlas, setup_unsegmented, queries):
    """Q4 (whole history) reads MORE data on the clustered archive."""
    q4 = queries[3]
    clustered_rows = sum(
        setup_atlas.archis.db.table(t).row_count
        for t in setup_atlas.archis.relations["employee"].all_tables()
    )
    unclustered_rows = sum(
        setup_unsegmented.archis.db.table(t).row_count
        for t in setup_unsegmented.archis.relations["employee"].all_tables()
    )
    assert clustered_rows > unclustered_rows, (
        "segment redundancy should make the clustered archive larger"
    )
    # and both still answer Q4 identically (dedup hides the redundancy)
    a = setup_atlas.archis.xquery(q4.xquery, allow_fallback=False)
    b = setup_unsegmented.archis.xquery(q4.xquery, allow_fallback=False)
    assert a == b


def test_single_object_similar_speed(setup_atlas, setup_unsegmented, queries):
    """Q1/Q3 on a single object: close with and without clustering
    (paper: "the speeds ... are close ... due to the effectiveness of
    B+ tree index on object IDs")."""
    for q in (queries[0], queries[2]):
        clustered = averaged(
            lambda q=q: run_archis_cold(setup_atlas.archis, q), 3
        )
        unclustered = averaged(
            lambda q=q: run_archis_cold(setup_unsegmented.archis, q), 3
        )
        ratio = clustered.seconds / max(unclustered.seconds, 1e-9)
        assert 0.1 < ratio < 10, f"{q.key}: unexpected gap {ratio:.1f}x"
