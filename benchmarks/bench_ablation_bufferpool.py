"""Ablation: buffer-pool size and clustering locality.

Segment clustering's IO story (paper §6.1, "records are globally
temporally clustered on segments") shows up as buffer-pool locality: a
snapshot query on a clustered archive touches a small set of pages that
fit a tiny pool, while the unclustered archive scatters its reads.  This
ablation measures cold physical reads for snapshot queries under small
pools.
"""

import pytest

from repro.bench import build_archis, format_table
from repro.bench.queries import q2_snapshot_avg


@pytest.fixture(scope="module")
def engines():
    generator, clustered, _ = build_archis(employees=50, years=17, umin=0.4)
    _, unclustered, _ = build_archis(employees=50, years=17, umin=None)
    return generator, clustered, unclustered


def cold_reads(archis, query, pool_pages):
    archis.db.pool.set_capacity(pool_pages)
    archis.reset_caches()
    before = archis.db.pager.io_stats()
    archis.xquery(query.xquery, allow_fallback=False)
    return archis.db.pager.io_stats().delta(before).reads


def test_ablation_table(engines):
    generator, clustered, unclustered = engines
    query = q2_snapshot_avg(generator.mid_history_date())
    rows = []
    for pool in (4, 16, 256):
        c = cold_reads(clustered, query, pool)
        u = cold_reads(unclustered, query, pool)
        rows.append([pool, c, u])
    print(
        "\n== ablation: snapshot physical reads vs buffer-pool size ==\n"
        + format_table(
            ["pool pages", "clustered reads", "unclustered reads"], rows
        )
        + "\nnote: below the segment's page footprint the (segno, tstart)"
        "\nindex visits the segment's pages in timestamp order and can"
        "\nthrash a tiny LRU pool — the flip side of index-ordered access"
        "\nover id-clustered pages."
    )
    # once the pool holds one segment, clustering reads no more pages
    for pool, c, u in rows:
        if pool >= 16:
            assert c <= u + 2, (
                f"pool={pool}: clustered {c} vs unclustered {u}"
            )


def test_tiny_pool_still_answers_correctly(engines):
    generator, clustered, unclustered = engines
    query = q2_snapshot_avg(generator.mid_history_date())
    clustered.db.pool.set_capacity(2)
    clustered.reset_caches()
    small = clustered.xquery(query.xquery, allow_fallback=False)
    clustered.db.pool.set_capacity(1024)
    big = clustered.xquery(query.xquery, allow_fallback=False)
    assert abs(small[0] - big[0]) < 1e-9
