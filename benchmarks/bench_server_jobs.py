"""Server jobs + binary encoding benchmark: protocol v3 end to end.

Two cells against one live server over loopback sockets:

**encoding** — the same large SELECT fetched through ``Client.execute``
with the JSON row encoding and with the negotiated ``colframe1`` binary
frames, interleaved round-robin so scan-time drift hits both paths
equally.  Records wire bytes for the row payload (the JSON rows array
vs the binary frame the server announced) and client-observed fetch
latency for each.  The acceptance gate requires the binary frame at
least ``SIZE_TARGET``x smaller *and* the fetch measurably faster on a
100k-row result.

**jobs** — a heavy scan submitted as an async job while a second
connection hammers short point lookups on a tiny table.  Records
submit latency, the interactive p50/p99 while the job runs, and the
job wall time.  The gate requires the interactive p99 to stay under
``P99_CEILING_MS`` while the job is in flight — the job executor is
separate from the session worker pool, so a long analytics query must
not starve short requests.

Run directly::

    PYTHONPATH=src python benchmarks/bench_server_jobs.py           # full (100k rows)
    PYTHONPATH=src python benchmarks/bench_server_jobs.py --smoke   # CI-sized

Emits ``BENCH_server_jobs.json`` next to this file (``--out``
overrides) and exits non-zero if any gate fails.
"""

import argparse
import json
import os
import sys
import threading
import time

from repro.obs import Histogram
from repro.rdb import ColumnType, Database
from repro.server import Client, Server
from repro.txn import TxnManager

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_server_jobs.json"
)

#: binary frame must be at least this many times smaller than JSON rows
SIZE_TARGET = 2.0

#: interactive p99 ceiling while a job occupies the job executor
P99_CEILING_MS = 250.0

QUERY = "SELECT id, name, title, dept, salary, day FROM big"
HEAVY_QUERY = "SELECT b.id, b.salary FROM big b ORDER BY b.salary"
PING_QUERY = "SELECT v FROM kv WHERE k = 3"

TITLES = (
    "Engineer",
    "Sr Engineer",
    "Manager",
    "Analyst",
    "Director",
    "Intern",
    "Contractor",
)


def build_server(rows):
    """An in-memory database with one ``rows``-row employee-history
    shaped table (plus a tiny lookup table for interactive pings),
    served."""
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "big",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("title", ColumnType.VARCHAR),
            ("dept", ColumnType.VARCHAR),
            ("salary", ColumnType.FLOAT),
            ("day", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    table = db.table("big")
    for index in range(rows):
        table.insert(
            (
                index,
                f"emp-{index % 997}",
                TITLES[index % len(TITLES)],
                f"d{index % 23:02d}",
                40000.0 + (index % 50) * 512.5,
                9131 + index % 365,
            )
        )
    db.create_table(
        "kv",
        [("k", ColumnType.INT), ("v", ColumnType.INT)],
        primary_key=("k",),
    )
    kv = db.table("kv")
    for key in range(8):
        kv.insert((key, key * 11))
    manager = TxnManager(db)
    return Server(manager, workers=4, job_workers=2)


def measure_fetch(host, port, repeats):
    """Interleaved best-of-``repeats`` fetches for both encodings.

    One JSON fetch then one binary fetch per round, so scan-time drift
    (page cache, allocator state) lands on both paths instead of
    biasing whichever ran second.  Returns ``{encoding: cell}``.
    """
    cells = {}
    with Client(host, port) as plain, Client(
        host, port, encoding="binary"
    ) as packed:
        clients = (("json", plain), ("binary", packed))
        for _, client in clients:  # warm each session's snapshot
            client._checked({"op": "ping"})
        for _ in range(repeats):
            for encoding, client in clients:
                started = time.perf_counter()
                response = client._checked({"op": "sql", "text": QUERY})
                seconds = time.perf_counter() - started
                rows = response["rows"]
                assert rows, "empty result"
                if encoding == "binary":
                    payload_bytes = response["binary"]["bytes"]
                else:
                    payload_bytes = len(
                        json.dumps(rows, separators=(",", ":")).encode(
                            "utf-8"
                        )
                    )
                cell = cells.setdefault(
                    encoding,
                    {
                        "encoding": encoding,
                        "rows": len(rows),
                        "payload_bytes": payload_bytes,
                        "fetch_seconds": seconds,
                    },
                )
                cell["fetch_seconds"] = min(cell["fetch_seconds"], seconds)
    for cell in cells.values():
        cell["fetch_seconds"] = round(cell["fetch_seconds"], 4)
    return cells


def measure_jobs(host, port, pings):
    """Submit the heavy query as a job; measure interactive latency
    while it runs on the separate job executor."""
    latencies = Histogram("bench.jobs.interactive.seconds")
    with Client(host, port) as submitter, Client(host, port) as fast:
        # steady-state the interactive session first: the gate measures
        # job interference, not first-request snapshot warmup
        fast.execute(PING_QUERY)
        started = time.perf_counter()
        job_id = submitter.submit(HEAVY_QUERY)
        submit_seconds = time.perf_counter() - started

        done = threading.Event()

        def waiter():
            submitter.job_wait(job_id, timeout=120.0)
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        observed = 0
        while observed < pings and not done.is_set():
            ping_started = time.perf_counter()
            fast.execute(PING_QUERY)
            latencies.observe(time.perf_counter() - ping_started)
            observed += 1
        thread.join(timeout=120.0)
        job_wall = time.perf_counter() - started
        status = submitter.job_status(job_id)
        result = submitter.job_result(job_id)
    return {
        "job_state": status["state"],
        "job_rows": result.row_count,
        "submit_ms": round(submit_seconds * 1000, 3),
        "job_wall_seconds": round(job_wall, 3),
        "interactive_requests": observed,
        "interactive_p50_ms": round(latencies.quantile(0.50) * 1000, 3),
        "interactive_p99_ms": round(latencies.quantile(0.99) * 1000, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        default=RESULTS_PATH,
        help="where to write the JSON results "
        "(default: BENCH_server_jobs.json)",
    )
    args = parser.parse_args(argv)

    rows = 5_000 if args.smoke else 100_000
    repeats = 2 if args.smoke else 3
    pings = 50 if args.smoke else 400

    with build_server(rows) as server:
        host, port = server.address
        cells = measure_fetch(host, port, repeats)
        json_cell, binary_cell = cells["json"], cells["binary"]
        jobs_cell = measure_jobs(host, port, pings)

    size_ratio = round(
        json_cell["payload_bytes"] / binary_cell["payload_bytes"], 2
    )
    speed_ratio = round(
        json_cell["fetch_seconds"] / binary_cell["fetch_seconds"], 2
    )
    payload = {
        "smoke": args.smoke,
        "rows": rows,
        "encoding": {
            "json": json_cell,
            "binary": binary_cell,
            "size_ratio": size_ratio,
            "speed_ratio": speed_ratio,
        },
        "jobs": jobs_cell,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(
        f"rows={rows}: json {json_cell['payload_bytes']}B/"
        f"{json_cell['fetch_seconds']}s, binary "
        f"{binary_cell['payload_bytes']}B/{binary_cell['fetch_seconds']}s "
        f"-> {size_ratio}x smaller, {speed_ratio}x faster"
    )
    print(
        f"job: {jobs_cell['job_state']} in {jobs_cell['job_wall_seconds']}s, "
        f"submit {jobs_cell['submit_ms']}ms, interactive p99 "
        f"{jobs_cell['interactive_p99_ms']}ms over "
        f"{jobs_cell['interactive_requests']} requests"
    )
    print(f"wrote {args.out}")

    failed = False
    if size_ratio < SIZE_TARGET:
        print(
            f"FAIL: binary frame only {size_ratio}x smaller than JSON "
            f"(target {SIZE_TARGET}x)",
            file=sys.stderr,
        )
        failed = True
    if not args.smoke and speed_ratio <= 1.0:
        # smoke results are too small to time reliably; the full run
        # must show the binary path measurably faster end to end
        print(
            f"FAIL: binary fetch not faster than JSON ({speed_ratio}x)",
            file=sys.stderr,
        )
        failed = True
    if jobs_cell["job_state"] != "COMPLETED":
        print(
            f"FAIL: job finished {jobs_cell['job_state']}", file=sys.stderr
        )
        failed = True
    if jobs_cell["interactive_p99_ms"] >= P99_CEILING_MS:
        print(
            f"FAIL: interactive p99 {jobs_cell['interactive_p99_ms']}ms "
            f"breached {P99_CEILING_MS}ms while a job was running",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
