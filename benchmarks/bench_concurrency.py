"""Concurrent-access benchmark: throughput and latency vs client count.

Measures the multi-session server end to end — real sockets, the JSON
protocol, MVCC transactions, and the group-commit WAL — at 1, 4 and 16
clients, with group commit on and off.  Each client commits on its own
table so lock sets are disjoint and commits can overlap (the group
commit scenario; same-table writers serialize on the table lock and
cannot batch by design).  Group commit's linger is adaptive — an
uncontended leader fsyncs immediately — so the single-client grouped
cell should now sit at ~non-grouped latency.

Emits ``BENCH_concurrency.json`` next to this file: one record per
(clients, group_commit) cell with commit throughput, client-observed
p50/p95/p99 round-trip latency and server-side commit-latency quantiles
(both via :meth:`Histogram.quantile`), and the WAL fsync counters.
"""

import json
import os
import tempfile
import threading
import time

import pytest

from repro.obs import Histogram, get_registry
from repro.rdb import ColumnType, Database
from repro.server import Client, Server
from repro.txn import TxnManager

CLIENT_COUNTS = (1, 4, 16)
TXNS_PER_CLIENT = 25
#: attempts per cell; the best-throughput run is recorded.  One-shot
#: cells are scheduler roulette on small CI boxes (a 16-client cell
#: runs 32 threads), and the noise lands on every cell equally.
BEST_OF = 3
RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_concurrency.json")


def run_cell(tmp, clients, group_commit, attempt=0):
    """One benchmark cell; returns its result record."""
    registry = get_registry()
    path = os.path.join(
        tmp, f"bench_{clients}_{int(group_commit)}_{attempt}.db"
    )
    db = Database(path, group_commit=group_commit, group_window=0.002)
    for index in range(clients):
        db.create_table(
            f"t{index}",
            [("id", ColumnType.INT), ("v", ColumnType.INT)],
            primary_key=("id",),
        )
    db.save()
    manager = TxnManager(db)
    fsyncs0 = registry.counter("wal.fsyncs").value
    batched0 = registry.counter("wal.group_commit.batched").value
    commit_hist = registry.histogram("txn.commit.seconds")
    commit_hist.reset()  # per-cell server-side commit quantiles

    latencies = []
    lat_lock = threading.Lock()
    failures = []

    with Server(manager, workers=max(4, clients)) as server:
        host, port = server.address

        def client_loop(index):
            try:
                with Client(host, port) as client:
                    mine = []
                    for step in range(TXNS_PER_CLIENT):
                        started = time.perf_counter()
                        client.begin()
                        client.sql(
                            f"INSERT INTO t{index} VALUES ({step}, {step})"
                        )
                        client.commit()
                        mine.append(time.perf_counter() - started)
                    with lat_lock:
                        latencies.extend(mine)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=client_loop, args=(i,))
            for i in range(clients)
        ]
        wall_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300.0)
        wall = time.perf_counter() - wall_start

    assert not failures, failures
    total = clients * TXNS_PER_CLIENT
    for index in range(clients):
        count = db.sql(f"SELECT COUNT(*) FROM t{index}").scalar()
        assert count == TXNS_PER_CLIENT, (index, count)
    db.close()
    # client-observed round-trip latencies through the quantile API
    roundtrip = Histogram("bench.roundtrip.seconds")
    for seconds in latencies:
        roundtrip.observe(seconds)
    return {
        "clients": clients,
        "group_commit": group_commit,
        "transactions": total,
        "throughput_tps": round(total / wall, 1),
        "p50_ms": round(roundtrip.quantile(0.50) * 1000, 3),
        "p95_ms": round(roundtrip.quantile(0.95) * 1000, 3),
        "p99_ms": round(roundtrip.quantile(0.99) * 1000, 3),
        "commit_p95_ms": round(commit_hist.quantile(0.95) * 1000, 3),
        "commit_p99_ms": round(commit_hist.quantile(0.99) * 1000, 3),
        "wal_fsyncs": registry.counter("wal.fsyncs").value - fsyncs0,
        "group_commit_batched": registry.counter(
            "wal.group_commit.batched"
        ).value
        - batched0,
    }


@pytest.fixture(scope="module")
def results():
    records = []
    with tempfile.TemporaryDirectory() as tmp:
        for group_commit in (True, False):
            for clients in CLIENT_COUNTS:
                records.append(
                    max(
                        (
                            run_cell(tmp, clients, group_commit, attempt)
                            for attempt in range(BEST_OF)
                        ),
                        key=lambda record: record["throughput_tps"],
                    )
                )
    with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2)
    return records


def test_concurrency_throughput_and_latency(results):
    header = (
        f"\n== server throughput / latency vs clients "
        f"({TXNS_PER_CLIENT} txns per client) ==\n"
        f"  {'clients':>7} {'group':>6} {'tps':>8} {'p50 ms':>8} "
        f"{'p95 ms':>8} {'p99 ms':>8} {'commit p99':>10} "
        f"{'fsyncs':>7} {'batched':>8}"
    )
    lines = [header]
    for record in results:
        lines.append(
            f"  {record['clients']:>7} "
            f"{'on' if record['group_commit'] else 'off':>6} "
            f"{record['throughput_tps']:>8} {record['p50_ms']:>8} "
            f"{record['p95_ms']:>8} {record['p99_ms']:>8} "
            f"{record['commit_p99_ms']:>10} {record['wal_fsyncs']:>7} "
            f"{record['group_commit_batched']:>8}"
        )
    lines.append(f"  -> {RESULTS_PATH}")
    print("\n".join(lines))
    assert len(results) == 2 * len(CLIENT_COUNTS)
    for record in results:
        assert record["throughput_tps"] > 0
        assert record["p50_ms"] <= record["p99_ms"]


def test_group_commit_batches_under_load(results):
    """Shape: with 16 concurrent clients, group commit must batch —
    fewer fsyncs than transactions — while the non-grouped runs never
    batch at all."""
    by_cell = {(r["clients"], r["group_commit"]): r for r in results}
    grouped = by_cell[(max(CLIENT_COUNTS), True)]
    assert grouped["group_commit_batched"] > 0
    assert grouped["wal_fsyncs"] < grouped["transactions"]
    for record in results:
        if not record["group_commit"]:
            assert record["group_commit_batched"] == 0


def test_adaptive_group_commit_criteria(results):
    """Acceptance shape for the adaptive linger (see repro.storage.wal):
    a solo client's grouped p50 stays within ~1.2x of non-grouped — the
    fixed-window tax is gone because an uncontended leader fsyncs
    immediately — while 16 grouped clients retain >= 1.4x the
    non-grouped throughput from fsync batching.  The latency ratio gets
    a little noise headroom on top of the ~1.2x criterion."""
    by_cell = {(r["clients"], r["group_commit"]): r for r in results}
    solo_ratio = by_cell[(1, True)]["p50_ms"] / by_cell[(1, False)]["p50_ms"]
    assert solo_ratio <= 1.3, (
        f"solo grouped p50 is {solo_ratio:.2f}x non-grouped: "
        "the adaptive linger is making an uncontended client wait"
    )
    many = max(CLIENT_COUNTS)
    grouped = by_cell[(many, True)]
    plain = by_cell[(many, False)]
    tput_ratio = grouped["throughput_tps"] / plain["throughput_tps"]
    assert tput_ratio >= 1.4, (
        f"grouped throughput only {tput_ratio:.2f}x non-grouped "
        f"at {many} clients: batching stopped paying for itself"
    )


def test_results_file_is_valid_json(results):
    with open(RESULTS_PATH, encoding="utf-8") as handle:
        on_disk = json.load(handle)
    assert on_disk == results
