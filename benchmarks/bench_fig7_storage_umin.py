"""Fig. 7: storage size vs U_min.

Paper: higher U_min ⇒ more segments ⇒ more redundant copies; the row-count
bound is N_seg / N_noseg <= 1 / (1 - U_min) (Eq. 3).  The paper observes 3
segments at U_min=0.2 up to 9 at U_min=0.4 on its dataset; segment counts
here depend on the synthetic update rates, but the monotone shape and the
bound must hold.
"""

import pytest

from repro.bench import build_archis, format_table

UMINS = [0.2, 0.26, 0.36, 0.4]


@pytest.fixture(scope="module")
def sweep():
    rows = {}
    baseline = None
    for umin in [None, *UMINS]:
        generator, archis, _ = build_archis(
            employees=40, years=17, umin=umin, min_segment_rows=256
        )
        row_count = sum(
            archis.db.table(t).row_count
            for t in archis.relations["employee"].all_tables()
        )
        if umin is None:
            baseline = row_count
        rows[umin] = {
            "rows": row_count,
            "segments": archis.segments.segment_count(),
            "bytes": archis.storage_bytes(),
        }
    return rows, baseline


def test_fig7_table(sweep):
    rows, baseline = sweep
    table = []
    for umin in UMINS:
        info = rows[umin]
        table.append(
            [
                f"{umin:.2f}",
                info["segments"],
                f"{info['rows'] / baseline:.3f}",
                f"{1.0 / (1.0 - umin):.3f}",
            ]
        )
    print(
        "\n== Fig. 7: storage ratio vs U_min ==\n"
        + format_table(
            ["U_min", "segments", "row ratio vs no-seg", "bound 1/(1-U)"],
            table,
        )
    )


def test_segments_monotone_in_umin(sweep):
    rows, _ = sweep
    segment_counts = [rows[u]["segments"] for u in UMINS]
    assert segment_counts == sorted(segment_counts), (
        f"higher U_min should not reduce segments: {segment_counts}"
    )
    assert rows[UMINS[-1]]["segments"] > rows[UMINS[0]]["segments"]


def test_equation_3_bound(sweep):
    rows, baseline = sweep
    for umin in UMINS:
        ratio = rows[umin]["rows"] / baseline
        bound = 1.0 / (1.0 - umin)
        assert ratio <= bound + 0.05, (
            f"U_min={umin}: ratio {ratio:.3f} exceeds Eq. 3 bound {bound:.3f}"
        )


def test_storage_overhead_grows_with_umin(sweep):
    rows, baseline = sweep
    low = rows[UMINS[0]]["rows"]
    high = rows[UMINS[-1]]["rows"]
    assert high >= low
    assert high >= baseline  # redundancy never shrinks the archive
