"""Fig. 13: storage ratios with BlockZIP compression.

Paper: with compression, ArchIS-DB2 and ArchIS-ATLaS both reach ratio
~0.23, essentially matching Tamino's 0.22, while *uncompressed* Tamino
storage is 1.47x the H-documents.
"""

import pytest

from repro.bench import build_archis, build_native, format_table
from repro.xmlkit import serialize


@pytest.fixture(scope="module")
def ratios():
    out = {}
    hdoc_bytes = None
    for profile in ("db2", "atlas"):
        generator, archis, _ = build_archis(
            employees=50, years=17, profile=profile, umin=0.4
        )
        if hdoc_bytes is None:
            hdoc_bytes = len(
                serialize(archis.publish("employee")).encode("utf-8")
            )
            out["tamino (compressed)"] = (
                build_native(archis, compress=True).storage_bytes() / hdoc_bytes
            )
            out["tamino (uncompressed)"] = (
                build_native(archis, compress=False).storage_bytes()
                / hdoc_bytes
            )
        uncompressed = archis.storage_bytes()
        archis.compress_archive()
        out[f"archis-{profile} (blockzip)"] = (
            archis.storage_bytes() / hdoc_bytes
        )
        out[f"archis-{profile} (plain)"] = uncompressed / hdoc_bytes
    return out


def test_fig13_table(ratios):
    paper = {
        "tamino (compressed)": "0.22",
        "tamino (uncompressed)": "1.47",
        "archis-db2 (blockzip)": "0.23",
        "archis-atlas (blockzip)": "0.23",
        "archis-db2 (plain)": "0.75",
        "archis-atlas (plain)": "1.02",
    }
    rows = [
        [name, f"{value:.2f}", paper.get(name, "")]
        for name, value in sorted(ratios.items())
    ]
    print(
        "\n== Fig. 13: storage / H-document size (with compression) ==\n"
        + format_table(["system", "measured", "paper"], rows)
    )


def test_blockzip_closes_the_gap_to_tamino(ratios):
    """Compressed ArchIS storage lands near the compressed native store."""
    for profile in ("db2", "atlas"):
        compressed = ratios[f"archis-{profile} (blockzip)"]
        tamino = ratios["tamino (compressed)"]
        assert compressed < tamino * 4, (
            f"{profile}: BlockZIP ratio {compressed:.2f} should approach "
            f"the native store's {tamino:.2f}"
        )


def test_blockzip_beats_plain_substantially(ratios):
    for profile in ("db2", "atlas"):
        assert (
            ratios[f"archis-{profile} (blockzip)"]
            < ratios[f"archis-{profile} (plain)"] * 0.7
        )


def test_uncompressed_native_store_expands(ratios):
    """Paper: Tamino without compression is 1.47x the document size."""
    assert ratios["tamino (uncompressed)"] > 1.2
