"""Fig. 11: storage (compression) ratios without RDBMS compression.

Paper (final storage size / H-document size): Tamino 0.22 (built-in gzip),
ArchIS-DB2 0.75, ArchIS-ATLaS 1.02 (clustered-index overhead).  The shape:
the native XML store is far smaller than the uncompressed H-tables, and
the ATLaS profile carries extra index overhead over DB2.
"""

import pytest

from repro.bench import build_archis, build_native, format_table
from repro.xmlkit import serialize


@pytest.fixture(scope="module")
def ratios():
    out = {}
    hdoc_bytes = None
    for profile in ("db2", "atlas"):
        generator, archis, _ = build_archis(
            employees=50, years=17, profile=profile, umin=0.4
        )
        if hdoc_bytes is None:
            hdoc_bytes = len(
                serialize(archis.publish("employee")).encode("utf-8")
            )
            native = build_native(archis, compress=True)
            out["tamino"] = native.storage_bytes() / hdoc_bytes
        out[f"archis-{profile}"] = archis.storage_bytes() / hdoc_bytes
    return out


def test_fig11_table(ratios):
    paper = {"tamino": 0.22, "archis-db2": 0.75, "archis-atlas": 1.02}
    rows = [
        [name, f"{ratios[name]:.2f}", f"{paper[name]:.2f}"]
        for name in ("tamino", "archis-db2", "archis-atlas")
    ]
    print(
        "\n== Fig. 11: storage / H-document size (no RDBMS compression) ==\n"
        + format_table(["system", "measured ratio", "paper ratio"], rows)
    )


def test_native_store_much_smaller(ratios):
    assert ratios["tamino"] < ratios["archis-db2"] / 2, (
        "the compressed native store should be far smaller than "
        "uncompressed H-tables"
    )


def test_atlas_overhead_exceeds_db2(ratios):
    assert ratios["archis-atlas"] > ratios["archis-db2"], (
        "the ATLaS profile's clustered indexes should cost extra storage"
    )


def test_tamino_ratio_band(ratios):
    # gzip on our H-documents should land in the same region as the paper
    assert 0.05 < ratios["tamino"] < 0.5
