"""Temporal SQL: FOR SYSTEM_TIME and sequenced operators vs the older paths.

Three comparisons over one generated employee history:

1. **AS OF vs the snapshot fast path** — ``SELECT ... FOR SYSTEM_TIME AS
   OF d`` plans through the Section 6.4 segment restriction, so it must
   stay within ``AS_OF_TARGET`` (1.2x) of the hand-built
   ``snapshot_rows`` segment reader on the full run.
2. **TEMPORAL JOIN vs the translated XQuery join** — the first-class
   interval-intersecting hash join against the same join phrased in
   XQuery (id-join + ``toverlaps`` + XML construction); the plan-native
   operator must win on the full run.
3. **Sequenced aggregate vs XQuery tavg** — ``SELECT tavg(...)`` against
   ``return tavg($s)``.  Both now lower into the same SequencedAggregate
   plan node (that was the point of the refactor), so this cell gates
   *parity*: the SQL surface must not cost more than the XQuery surface
   beyond noise.

Answers are cross-checked before any timing is reported.  EXPLAIN
evidence is gated in every mode (including ``--smoke``): the AS OF plan
must show ``segment-restriction`` firing, and on a 4-shard archive a
key-equality AS OF query must prune the Exchange to ``shards=1/4``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_temporal_sql.py            # full
    PYTHONPATH=src python benchmarks/bench_temporal_sql.py --smoke    # CI-sized

Emits ``BENCH_temporal_sql.json`` next to this file (``--out``
overrides); exits non-zero on divergent answers, missing plan evidence,
or (full run) missed performance targets.
"""

import argparse
import json
import os
import sys
import time

from repro.bench import build_archis
from repro.util.timeutil import parse_date

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_temporal_sql.json"
)

#: max allowed (SQL-native AS OF) / (snapshot_rows fast path) time ratio
AS_OF_TARGET = 1.2

#: the first-class temporal join must beat the translated XQuery join
JOIN_TARGET = 1.0

#: tavg gates parity only: XQuery tavg lowers into the *same*
#: SequencedAggregate node, so the surfaces differ by constant
#: translate/XML overhead — never by more than noise
TAVG_TARGET = 0.9


def as_of_sql(date: str) -> str:
    return (
        "SELECT t.id, t.salary FROM employee_salary t "
        f"FOR SYSTEM_TIME AS OF DATE '{date}' ORDER BY t.id"
    )


JOIN_SQL = (
    "SELECT a.id, a.salary, b.title, a.tstart, a.tend "
    "FROM employee_salary a TEMPORAL JOIN employee_title b ON a.id = b.id"
)

JOIN_XQUERY = (
    'for $e in doc("employees.xml")/employees/employee '
    "for $s in $e/salary for $t in $e/title "
    "where not(empty(overlapinterval($s, $t))) "
    "return overlapinterval($s, $t)"
)

TAVG_SQL = "SELECT tavg(t.salary) FROM employee_salary t"

TAVG_XQUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary '
    "return tavg($s)"
)


def _time(run, repeats: int) -> float:
    """Best-of-N wall time: robust to scheduler noise on small cells."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def _interval_pairs_from_xml(elements):
    return sorted(
        (parse_date(e.get("tstart")), parse_date(e.get("tend")))
        for e in elements
    )


def _check_as_of(archis, date: str):
    sql_rows = [tuple(r) for r in archis.sql(as_of_sql(date)).rows]
    snap_rows = sorted(
        (row[0], row[1])
        for row in archis.snapshot_rows(
            "employee", "salary", parse_date(date)
        ).rows
    )
    return sql_rows == snap_rows, len(sql_rows)


def _check_join(archis):
    sql_rows = archis.sql(JOIN_SQL).rows
    sql_intervals = sorted((row[3], row[4]) for row in sql_rows)
    xml = archis.xquery(JOIN_XQUERY, allow_fallback=False).rows
    return sql_intervals == _interval_pairs_from_xml(xml), len(sql_rows)


def _check_tavg(archis):
    sql_rows = archis.sql(TAVG_SQL).rows
    xml = archis.xquery(TAVG_XQUERY, allow_fallback=False).rows
    if len(sql_rows) != len(xml):
        return False, len(sql_rows)
    for (value, tstart, tend), element in zip(sql_rows, xml):
        if parse_date(element.get("tstart")) != tstart:
            return False, len(sql_rows)
        if abs(float(element.children[0].value) - value) > 1e-6:
            return False, len(sql_rows)
    return True, len(sql_rows)


def _plan_evidence(archis, date: str):
    """EXPLAIN output for the AS OF query on the segmented store."""
    explained = archis.explain_sql(as_of_sql(date))
    rules = list(explained.plan.rules)
    return {
        "rules": rules,
        "segment_restriction_fired": any(
            "segment-restriction" in rule for rule in rules
        ),
    }


def _shard_evidence(shards, employees, years, scale, date: str):
    """A keyed AS OF query on a sharded archive must prune to one shard."""
    _, archis, _ = build_archis(
        employees=employees,
        years=years,
        scale=scale,
        umin=0.4,
        min_segment_rows=256,
        shards=shards,
    )
    keyed = (
        "SELECT t.id, t.salary FROM employee_salary t "
        f"FOR SYSTEM_TIME AS OF DATE '{date}' WHERE t.id = :k"
    )
    rows = archis.sql(
        "SELECT t.id FROM employee_salary t "
        f"FOR SYSTEM_TIME AS OF DATE '{date}'"
    ).rows
    key = sorted({row[0] for row in rows})[0]
    explained = archis.explain_sql(keyed, {"k": key})
    physical = explained.plan.physical.splitlines()
    exchange_line = next(
        (line.strip() for line in physical if "Exchange" in line), ""
    )
    archis.close()
    return {
        "exchange_plan": exchange_line,
        "pruned_to_one": f"shards=1/{shards}" in exchange_line,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload: gates equivalence + plans, not speed",
    )
    parser.add_argument(
        "--out",
        default=RESULTS_PATH,
        help="where to write the JSON results "
        "(default: BENCH_temporal_sql.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        employees, years, scale, repeats = 32, 6, 1, 2
    else:
        employees, years, scale, repeats = 120, 17, 2, 5

    generator, archis, _ = build_archis(
        employees=employees,
        years=years,
        scale=scale,
        umin=0.4,
        min_segment_rows=256,
    )
    date = generator.mid_history_date()
    day = parse_date(date)

    failed = False
    payload = {
        "smoke": args.smoke,
        "employees": employees,
        "years": years,
        "scale": scale,
        "repeats": repeats,
        "as_of_date": date,
        "history_rows": archis.db.table("employee_salary").row_count,
        "cells": {},
    }

    # -- equivalence first: never time wrong answers ---------------------
    checks = {
        "as_of": _check_as_of(archis, date),
        "temporal_join": _check_join(archis),
        "tavg": _check_tavg(archis),
    }
    for name, (ok, size) in checks.items():
        payload["cells"][name] = {"result_size": size, "equivalent": ok}
        if not ok:
            print(f"FAIL: {name} answers diverge", file=sys.stderr)
            failed = True
    if failed:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        return 1

    # -- plan evidence (gated in every mode) ----------------------------
    evidence = _plan_evidence(archis, date)
    payload["plan"] = evidence
    if not evidence["segment_restriction_fired"]:
        print(
            "FAIL: AS OF plan did not fire segment-restriction: "
            + "; ".join(evidence["rules"]),
            file=sys.stderr,
        )
        failed = True

    shard_cell = _shard_evidence(4, employees, years, scale, date)
    payload["sharded"] = shard_cell
    if not shard_cell["pruned_to_one"]:
        print(
            "FAIL: keyed AS OF did not prune the Exchange to one shard "
            f"(plan line: {shard_cell['exchange_plan']!r})",
            file=sys.stderr,
        )
        failed = True

    # -- timings ---------------------------------------------------------
    as_of_seconds = _time(lambda: archis.sql(as_of_sql(date)), repeats)
    snapshot_seconds = _time(
        lambda: archis.snapshot_rows("employee", "salary", day), repeats
    )
    ratio = as_of_seconds / max(snapshot_seconds, 1e-9)
    payload["cells"]["as_of"].update(
        {
            "sql_seconds": round(as_of_seconds, 5),
            "snapshot_rows_seconds": round(snapshot_seconds, 5),
            "ratio": round(ratio, 3),
            "target": AS_OF_TARGET,
        }
    )
    print(
        f"as_of: sql {as_of_seconds*1000:.1f} ms vs snapshot_rows "
        f"{snapshot_seconds*1000:.1f} ms ({ratio:.2f}x, target "
        f"<= {AS_OF_TARGET}x)"
    )
    if not args.smoke and ratio > AS_OF_TARGET:
        print(
            f"FAIL: AS OF is {ratio:.2f}x of snapshot_rows "
            f"(target {AS_OF_TARGET}x)",
            file=sys.stderr,
        )
        failed = True

    for name, sql, xquery, target in (
        ("temporal_join", JOIN_SQL, JOIN_XQUERY, JOIN_TARGET),
        ("tavg", TAVG_SQL, TAVG_XQUERY, TAVG_TARGET),
    ):
        sql_seconds = _time(lambda s=sql: archis.sql(s), repeats)
        xq_seconds = _time(
            lambda q=xquery: archis.xquery(q, allow_fallback=False), repeats
        )
        speedup = xq_seconds / max(sql_seconds, 1e-9)
        payload["cells"][name].update(
            {
                "sql_seconds": round(sql_seconds, 5),
                "xquery_seconds": round(xq_seconds, 5),
                "speedup": round(speedup, 2),
                "target": target,
            }
        )
        print(
            f"{name}: sql {sql_seconds*1000:.1f} ms vs xquery "
            f"{xq_seconds*1000:.1f} ms ({speedup:.2f}x, target "
            f">= {target}x)"
        )
        if not args.smoke and speedup < target:
            print(
                f"FAIL: {name} SQL path missed its target vs the XQuery "
                f"equivalent ({speedup:.2f}x < {target}x)",
                file=sys.stderr,
            )
            failed = True

    archis.close()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
