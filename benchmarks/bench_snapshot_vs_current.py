"""Section 7.1: snapshot on the archive vs query on the current database.

Paper: the archived snapshot query (Q2) runs ~27% slower than the same
aggregate computed directly on the current table — the price of the
segment redundancy.  Shape asserted: the archive snapshot is slower than
the current-table query, but by a small constant factor, not by the size
of the history.
"""

import pytest

from repro.bench import averaged, build_setup, run_archis_cold
from repro.bench.queries import q2_snapshot_avg


@pytest.fixture(scope="module")
def setup():
    return build_setup(employees=50, years=17)


def current_avg(setup):
    setup.archis.reset_caches()
    import time

    start = time.perf_counter()
    setup.archis.db.sql("SELECT avg(e.salary) FROM employee e").scalar()
    return time.perf_counter() - start


def test_snapshot_vs_current(setup):
    # snapshot "as of now" on the archive
    today = setup.archis.db.current_date
    from repro.util.timeutil import format_date

    query = q2_snapshot_avg(format_date(today))
    archive_cost = averaged(
        lambda: run_archis_cold(setup.archis, query), 5
    ).seconds
    current_cost = sum(current_avg(setup) for _ in range(5)) / 5
    slowdown = archive_cost / max(current_cost, 1e-9)
    print(
        f"\n== snapshot-on-archive vs current-table query ==\n"
        f"  current table: {current_cost*1000:.2f} ms\n"
        f"  archive snapshot: {archive_cost*1000:.2f} ms "
        f"({slowdown:.2f}x; paper: ~1.27x)"
    )
    assert slowdown < 25, (
        f"archive snapshot should be within a small factor of the current "
        f"query, got {slowdown:.1f}x"
    )


def test_snapshot_matches_current_average(setup):
    """Correctness: the as-of-now snapshot equals the current table's avg."""
    from repro.util.timeutil import format_date

    today = setup.archis.db.current_date
    query = q2_snapshot_avg(format_date(today))
    snapshot = setup.archis.xquery(query.xquery, allow_fallback=False)[0]
    current = setup.archis.db.sql(
        "SELECT avg(e.salary) FROM employee e"
    ).scalar()
    assert abs(snapshot - current) < 1e-6
