"""Fig. 8 / Table 3: query performance, ArchIS on RDBMS vs native XML DB.

Paper: segment-clustered ArchIS beats Tamino on every query; the snapshot
and slicing margins are the largest (Q2 ~102x, Q5 ~66x, Q4 ~4x, Q6 ~35x on
ArchIS-ATLaS).  Absolute factors depend on the substrate; the shape this
bench asserts is: ArchIS wins everywhere, and the snapshot/slicing
speedups exceed the whole-history ones.
"""

from repro.bench import (
    compare_engines,
    print_comparison,
    run_archis_cold,
    run_native_cold,
    speedup,
)

PAPER_NOTES = {
    "Q1": "single-object snapshot",
    "Q2": "paper: ATLaS ~102x vs Tamino",
    "Q3": "single-object history",
    "Q4": "paper: ~4x",
    "Q5": "paper: ~66x",
    "Q6": "paper: ~35x",
}


def test_fig8_table(setup_atlas, queries):
    results = compare_engines(setup_atlas, queries, repeats=2)
    print_comparison(
        "Fig. 8: ArchIS-ATLaS (segmented) vs native XML DB", results,
        PAPER_NOTES,
    )
    for key, pair in results.items():
        assert pair["archis"].seconds < pair["native"].seconds, (
            f"{key}: ArchIS should beat the native XML DB"
        )
    snapshot_gain = speedup(results["Q2"]["native"], results["Q2"]["archis"])
    history_gain = speedup(results["Q3"]["native"], results["Q3"]["archis"])
    assert snapshot_gain > history_gain, (
        "snapshot speedup should exceed single-object history speedup "
        f"({snapshot_gain:.1f}x vs {history_gain:.1f}x)"
    )


def test_fig8_db2_profile_also_wins(setup_db2, queries):
    results = compare_engines(setup_db2, queries, repeats=3)
    print_comparison("Fig. 8: ArchIS-DB2 vs native XML DB", results)
    # single-object queries can be a near-tie at this scale (both engines
    # are index/loc-limited); whole-archive queries must win outright
    for key, pair in results.items():
        assert pair["archis"].seconds < pair["native"].seconds * 1.3, key
    for key in ("Q2", "Q5", "Q6"):
        pair = results[key]
        assert pair["archis"].seconds < pair["native"].seconds, key


# -- per-query micro-benchmarks (pytest-benchmark) ----------------------------


def test_q1_archis(benchmark, setup_atlas, queries):
    benchmark(lambda: run_archis_cold(setup_atlas.archis, queries[0]))


def test_q1_native(benchmark, setup_atlas, queries):
    benchmark(lambda: run_native_cold(setup_atlas.native, queries[0]))


def test_q2_archis(benchmark, setup_atlas, queries):
    benchmark(lambda: run_archis_cold(setup_atlas.archis, queries[1]))


def test_q2_native(benchmark, setup_atlas, queries):
    benchmark(lambda: run_native_cold(setup_atlas.native, queries[1]))


def test_q3_archis(benchmark, setup_atlas, queries):
    benchmark(lambda: run_archis_cold(setup_atlas.archis, queries[2]))


def test_q3_native(benchmark, setup_atlas, queries):
    benchmark(lambda: run_native_cold(setup_atlas.native, queries[2]))


def test_q4_archis(benchmark, setup_atlas, queries):
    benchmark(lambda: run_archis_cold(setup_atlas.archis, queries[3]))


def test_q4_native(benchmark, setup_atlas, queries):
    benchmark(lambda: run_native_cold(setup_atlas.native, queries[3]))


def test_q5_archis(benchmark, setup_atlas, queries):
    benchmark(lambda: run_archis_cold(setup_atlas.archis, queries[4]))


def test_q5_native(benchmark, setup_atlas, queries):
    benchmark(lambda: run_native_cold(setup_atlas.native, queries[4]))


def test_q6_archis(benchmark, setup_atlas, queries):
    benchmark(lambda: run_archis_cold(setup_atlas.archis, queries[6]))


def test_q6_native(benchmark, setup_atlas, queries):
    benchmark(lambda: run_native_cold(setup_atlas.native, queries[6]))
