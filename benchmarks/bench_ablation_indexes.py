"""Ablation: the (segno, tstart) history indexes.

DESIGN.md calls out that ArchIS's snapshot fast path depends on every
index being augmented with segno (paper §6.3).  This ablation drops the
indexes and measures the snapshot query falling back to heap scans.
"""

import pytest

from repro.bench import (
    averaged,
    build_archis,
    format_table,
    run_archis_cold,
)
from repro.bench.queries import q2_snapshot_avg


@pytest.fixture(scope="module")
def engines():
    generator, indexed, _ = build_archis(employees=50, years=17, umin=0.4)
    _, stripped, _ = build_archis(employees=50, years=17, umin=0.4)
    for table_name in stripped.relations["employee"].all_tables():
        table = stripped.db.table(table_name)
        for index_name in list(table.indexes):
            table.drop_index(index_name)
    # warm both engines once so measurements exclude first-call setup
    probe = q2_snapshot_avg(generator.mid_history_date())
    indexed.xquery(probe.xquery, allow_fallback=False)
    stripped.xquery(probe.xquery, allow_fallback=False)
    return generator, indexed, stripped


def test_ablation_table(engines):
    generator, indexed, stripped = engines
    query = q2_snapshot_avg(generator.mid_history_date())
    with_idx = averaged(lambda: run_archis_cold(indexed, query), 3)
    without_idx = averaged(lambda: run_archis_cold(stripped, query), 3)
    print(
        "\n== ablation: snapshot with vs without (segno, tstart) indexes ==\n"
        + format_table(
            ["variant", "ms", "physical reads"],
            [
                ["indexed", f"{with_idx.seconds*1000:.2f}", with_idx.physical_reads],
                ["no indexes", f"{without_idx.seconds*1000:.2f}", without_idx.physical_reads],
            ],
        )
    )
    assert with_idx.physical_reads <= without_idx.physical_reads, (
        "the index should not read more pages than a heap scan"
    )


def test_answers_identical_without_indexes(engines):
    generator, indexed, stripped = engines
    query = q2_snapshot_avg(generator.mid_history_date())
    a = indexed.xquery(query.xquery, allow_fallback=False)
    b = stripped.xquery(query.xquery, allow_fallback=False)
    assert abs(a[0] - b[0]) < 1e-9
