"""Section 8.4: update performance.

Paper: a single current-salary update costs 1.2 s on Tamino vs 0.29 s on
ArchIS-DB2; a simulated daily update 15 s vs 1.52 s.  The shape: the native
XML store re-serializes and re-stores the whole document per update batch,
while ArchIS touches only the live segment.  Segment freezes are an
occasional amortized cost.
"""

import time

import pytest

from repro.bench import build_setup, format_table
from repro.dataset import DailyUpdateBatch, single_salary_update


@pytest.fixture(scope="module")
def update_setup():
    return build_setup(employees=50, years=17)


def _live_employee(setup):
    return next(iter(setup.archis.db.table("employee").rows()))[0]


def _native_single_update(setup, employee_id):
    def mutate(root):
        for emp in root.elements("employee"):
            if emp.first("id").text() == str(employee_id):
                emp.elements("salary")[-1].children[0].value = "99999"
                return

    setup.native.update_document("employees.xml", mutate)


def test_update_comparison_table(update_setup):
    setup = update_setup
    employee_id = _live_employee(setup)
    setup.archis.db.advance_days(1)

    start = time.perf_counter()
    single_salary_update(setup.archis.db, employee_id)
    setup.archis.apply_pending()
    archis_single = time.perf_counter() - start

    start = time.perf_counter()
    _native_single_update(setup, employee_id)
    native_single = time.perf_counter() - start

    setup.archis.db.advance_days(1)
    batch = DailyUpdateBatch()
    start = time.perf_counter()
    batch.apply(setup.archis.db)
    setup.archis.apply_pending()
    archis_daily = time.perf_counter() - start

    start = time.perf_counter()
    setup.native.update_document("employees.xml", lambda root: None)
    native_daily = time.perf_counter() - start

    rows = [
        ["single update", f"{native_single*1000:.1f}",
         f"{archis_single*1000:.1f}", "paper: 1.2s vs 0.29s"],
        ["daily batch", f"{native_daily*1000:.1f}",
         f"{archis_daily*1000:.1f}", "paper: 15s vs 1.52s"],
    ]
    print(
        "\n== Section 8.4: update cost (native document rewrite vs ArchIS) ==\n"
        + format_table(["operation", "native ms", "archis ms", "paper"], rows)
    )
    assert archis_single < native_single, (
        "a single update should be cheaper on ArchIS than a full document "
        "rewrite on the native store"
    )


def test_freeze_cost_is_occasional(update_setup):
    """Paper: "the archiving of each segment only occurs once" — freezes
    happen far less often than updates."""
    archis = update_setup.archis
    total_changes = sum(
        archis.db.table(t).row_count
        for t in archis.relations["employee"].all_tables()
    )
    assert archis.segments.freeze_count * 50 < total_changes


def test_archis_single_update(benchmark, update_setup):
    setup = update_setup
    employee_id = _live_employee(setup)
    table = setup.archis.db.table("employee")
    toggle = [50000, 50001]

    def run():
        # alternate between two fixed salaries so repeated benchmark rounds
        # never compound the value
        setup.archis.db.advance_days(1)
        toggle.reverse()
        table.update_where(
            lambda r: r["id"] == employee_id, {"salary": toggle[0]}
        )
        setup.archis.apply_pending()

    benchmark(run)


def test_native_single_update(benchmark, update_setup):
    setup = update_setup
    employee_id = _live_employee(setup)
    benchmark(lambda: _native_single_update(setup, employee_id))
