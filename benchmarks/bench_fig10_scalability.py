"""Fig. 10: scalability — 7x data, query time grows ~linearly.

Paper: on a 7x dataset most query times grow approximately linearly;
single-object queries (Q1/Q3) grow much less, because the id index
isolates them from the archive size.
"""

import pytest

from repro.bench import (
    averaged,
    build_setup,
    default_queries,
    format_table,
    run_archis_cold,
)

BASE_EMPLOYEES = 20


@pytest.fixture(scope="module")
def scaled_setups():
    small = build_setup(employees=BASE_EMPLOYEES, years=17, scale=1)
    large = build_setup(employees=BASE_EMPLOYEES, years=17, scale=7)
    return small, large


def test_fig10_table(scaled_setups):
    small, large = scaled_setups
    queries_small = default_queries(small.generator)
    queries_large = default_queries(large.generator)
    rows = []
    growth = {}
    for qs, ql in zip(queries_small, queries_large):
        ms = averaged(lambda q=qs: run_archis_cold(small.archis, q), 3)
        ml = averaged(lambda q=ql: run_archis_cold(large.archis, q), 3)
        factor = ml.seconds / max(ms.seconds, 1e-9)
        growth[qs.key] = factor
        rows.append(
            [qs.key, f"{ms.seconds*1000:.1f}", f"{ml.seconds*1000:.1f}",
             f"{factor:.1f}x"]
        )
    print(
        "\n== Fig. 10: query time at 1x vs 7x data (ArchIS) ==\n"
        + format_table(["query", "1x ms", "7x ms", "growth"], rows)
        + "\npaper: most queries grow ~linearly (<=7x); Q1/Q3 grow much less"
    )
    # whole-archive queries: at most modestly super-linear
    for key in ("Q2", "Q4", "Q5"):
        assert growth[key] < 7 * 2.5, (
            f"{key} grew {growth[key]:.1f}x on 7x data (super-linear)"
        )
    # single-object queries grow much less than the data
    for key in ("Q1", "Q3"):
        assert growth[key] < 7, (
            f"{key} (single object) grew {growth[key]:.1f}x"
        )


def test_archive_size_scales_linearly(scaled_setups):
    small, large = scaled_setups
    small_rows = small.archis.db.table("employee_salary").row_count
    large_rows = large.archis.db.table("employee_salary").row_count
    ratio = large_rows / small_rows
    assert 4 < ratio < 10, f"7x population gave {ratio:.1f}x history rows"
