"""Fig. 10: scalability — 7x data, query time grows ~linearly; sharding cells.

Paper: on a 7x dataset most query times grow approximately linearly;
single-object queries (Q1/Q3) grow much less, because the id index
isolates them from the archive size.  The pytest half of this module
reproduces that table.

The CLI half measures the other scalability axis this reproduction adds:
**key-partitioned shard stores** behind the ``ShardRouter`` with the
scatter-gather ``Exchange`` operator.  A multi-key single-key-query
workload — per-employee snapshot scans (``id = K AND tstart <= d <= tend``)
and per-employee temporal scans (``id = K``) — runs against the same
dataset archived once into a single store and once into ``--shards`` (4
by default) partitioned stores.  Key-equality pruning collapses every
query's fan-out to the one owning shard (visible in EXPLAIN as
``Exchange ... shards=1/N`` and in the ``exchange.shards_pruned``
counter), so each query scans ~1/N of the history and throughput must
rise by at least ``SHARD_TARGET`` (2x) at 4 shards on the full run.

Both cells must return **identical answers** for every key before any
timing is reported; the benchmark refuses to print a speedup on
divergent state.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fig10_scalability.py            # full
    PYTHONPATH=src python benchmarks/bench_fig10_scalability.py --smoke    # CI-sized

Emits ``BENCH_fig10_scalability.json`` next to this file (``--out``
overrides) and exits non-zero if answers diverge, pruning is not
observed, or (full run only) either workload's sharded throughput falls
below ``SHARD_TARGET``.
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.bench import (
    averaged,
    build_archis,
    build_setup,
    default_queries,
    format_table,
    run_archis_cold,
)
from repro.obs import get_registry

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "BENCH_fig10_scalability.json"
)

BASE_EMPLOYEES = 20

#: minimum sharded/unsharded throughput ratio, per workload, on the
#: full run (the acceptance target: pruned queries touch ~1/N of the
#: archive, so 4 shards must buy at least 2x)
SHARD_TARGET = 2.0


@pytest.fixture(scope="module")
def scaled_setups():
    small = build_setup(employees=BASE_EMPLOYEES, years=17, scale=1)
    large = build_setup(employees=BASE_EMPLOYEES, years=17, scale=7)
    return small, large


def test_fig10_table(scaled_setups):
    small, large = scaled_setups
    queries_small = default_queries(small.generator)
    queries_large = default_queries(large.generator)
    rows = []
    growth = {}
    for qs, ql in zip(queries_small, queries_large):
        ms = averaged(lambda q=qs: run_archis_cold(small.archis, q), 3)
        ml = averaged(lambda q=ql: run_archis_cold(large.archis, q), 3)
        factor = ml.seconds / max(ms.seconds, 1e-9)
        growth[qs.key] = factor
        rows.append(
            [qs.key, f"{ms.seconds*1000:.1f}", f"{ml.seconds*1000:.1f}",
             f"{factor:.1f}x"]
        )
    print(
        "\n== Fig. 10: query time at 1x vs 7x data (ArchIS) ==\n"
        + format_table(["query", "1x ms", "7x ms", "growth"], rows)
        + "\npaper: most queries grow ~linearly (<=7x); Q1/Q3 grow much less"
    )
    # whole-archive queries: at most modestly super-linear
    for key in ("Q2", "Q4", "Q5"):
        assert growth[key] < 7 * 2.5, (
            f"{key} grew {growth[key]:.1f}x on 7x data (super-linear)"
        )
    # single-object queries grow much less than the data
    for key in ("Q1", "Q3"):
        assert growth[key] < 7, (
            f"{key} (single object) grew {growth[key]:.1f}x"
        )


def test_archive_size_scales_linearly(scaled_setups):
    small, large = scaled_setups
    small_rows = small.archis.db.table("employee_salary").row_count
    large_rows = large.archis.db.table("employee_salary").row_count
    ratio = large_rows / small_rows
    assert 4 < ratio < 10, f"7x population gave {ratio:.1f}x history rows"


# -- sharded scalability (CLI) ----------------------------------------------

_HISTORY = (
    "TABLE(history_employee_salary()) "
    "AS t(id, salary, tstart, tend, segno)"
)
SNAPSHOT_SQL = (
    f"SELECT t.id, t.salary FROM {_HISTORY} "
    "WHERE t.id = :k AND t.tstart <= :d AND t.tend >= :d"
)
TEMPORAL_SQL = (
    f"SELECT t.tstart, t.tend, t.salary FROM {_HISTORY} WHERE t.id = :k"
)

WORKLOADS = (
    ("snapshot_scan", SNAPSHOT_SQL),
    ("temporal_scan", TEMPORAL_SQL),
)


def _build_store(shards, employees, years, scale):
    _, archis, _ = build_archis(
        employees=employees,
        years=years,
        scale=scale,
        umin=0.4,
        min_segment_rows=256,
        shards=shards,
    )
    return archis


def _workload_keys(archis, sample):
    """Every key in the archive, thinned to ``sample`` evenly spaced ids."""
    rows = archis.db.sql("SELECT t.id FROM employee_id t").rows
    keys = sorted({row[0] for row in rows})
    if len(keys) > sample:
        step = len(keys) / sample
        keys = [keys[int(i * step)] for i in range(sample)]
    return keys


def _answers(archis, keys, day):
    """Canonical per-key result sets for both workloads (equivalence)."""
    out = {}
    for name, sql in WORKLOADS:
        out[name] = {
            k: sorted(archis.db.sql(sql, {"k": k, "d": day}).rows)
            for k in keys
        }
    return out


def _time_workload(archis, sql, keys, day, repeats):
    """Total seconds and queries/sec for ``repeats`` passes over ``keys``."""
    queries = 0
    start = time.perf_counter()
    for _ in range(repeats):
        for k in keys:
            archis.db.sql(sql, {"k": k, "d": day})
            queries += 1
    elapsed = time.perf_counter() - start
    return elapsed, queries / max(elapsed, 1e-9)


def run_shard_cells(shards, employees, years, scale, sample, repeats):
    """One unsharded and one ``shards``-way cell over the same dataset."""
    registry = get_registry()
    pruned = registry.counter("exchange.shards_pruned")
    exchanges = registry.counter("exchange.queries")

    plain = _build_store(None, employees, years, scale)
    day = plain.db.current_date - (years * 365) // 2
    keys = _workload_keys(plain, sample)
    history_rows = plain.db.table("employee_salary").row_count
    reference = _answers(plain, keys, day)

    sharded = _build_store(shards, employees, years, scale)
    diverged = []
    for name, answers in _answers(sharded, keys, day).items():
        for k in keys:
            if answers[k] != reference[name][k]:
                diverged.append(f"{name} key={k}")

    # pruning evidence: one sharded query, read back the plan + counters
    pruned_before = pruned.value
    exchanges_before = exchanges.value
    sharded.db.sql(SNAPSHOT_SQL, {"k": keys[0], "d": day})
    plan_text = sharded.db.last_plan.report().physical.splitlines()
    exchange_line = next(
        (line.strip() for line in plan_text if "Exchange" in line), ""
    )
    pruning_seen = (
        f"shards=1/{shards}" in exchange_line
        and pruned.value - pruned_before == shards - 1
        and exchanges.value > exchanges_before
    )

    cell = {
        "shards": shards,
        "employees": employees,
        "years": years,
        "scale": scale,
        "history_rows": history_rows,
        "keys_sampled": len(keys),
        "repeats": repeats,
        "diverged": diverged,
        "exchange_plan": exchange_line,
        "pruning_seen": pruning_seen,
        "workloads": {},
    }
    if diverged:
        plain.close()
        sharded.close()
        return cell  # no timings on wrong answers

    for name, sql in WORKLOADS:
        base_s, base_qps = _time_workload(plain, sql, keys, day, repeats)
        shard_s, shard_qps = _time_workload(sharded, sql, keys, day, repeats)
        cell["workloads"][name] = {
            "unsharded_seconds": round(base_s, 4),
            "unsharded_qps": round(base_qps, 1),
            "sharded_seconds": round(shard_s, 4),
            "sharded_qps": round(shard_qps, 1),
            "speedup": round(shard_qps / max(base_qps, 1e-9), 2),
        }

    plain.close()
    sharded.close()
    return cell


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload: gates equivalence + pruning, not speed",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for the partitioned cell (default: 4)",
    )
    parser.add_argument(
        "--out",
        default=RESULTS_PATH,
        help="where to write the JSON results "
        "(default: BENCH_fig10_scalability.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        employees, years, scale, sample, repeats = 32, 6, 1, 8, 1
    else:
        employees, years, scale, sample, repeats = 120, 17, 2, 24, 3

    cell = run_shard_cells(
        args.shards, employees, years, scale, sample, repeats
    )

    payload = {"smoke": args.smoke, "shard_cell": cell}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failed = False
    if cell["diverged"]:
        print(
            "FAIL: sharded answers diverge from the single store: "
            + ", ".join(cell["diverged"][:5]),
            file=sys.stderr,
        )
        failed = True
    if not cell["pruning_seen"]:
        print(
            "FAIL: key-equality pruning not observed "
            f"(plan line: {cell['exchange_plan']!r})",
            file=sys.stderr,
        )
        failed = True
    for name, w in cell["workloads"].items():
        print(
            f"{name}: unsharded {w['unsharded_qps']} q/s, "
            f"{cell['shards']} shards {w['sharded_qps']} q/s "
            f"({w['speedup']}x)  [{cell['exchange_plan']}]",
            flush=True,
        )
        if not args.smoke and w["speedup"] < SHARD_TARGET:
            print(
                f"FAIL: {name} sharded speedup {w['speedup']}x below the "
                f"{SHARD_TARGET}x target at {cell['shards']} shards",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
