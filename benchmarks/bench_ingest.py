"""Batched-ingest benchmark: BatchArchiver vs row-at-a-time apply.

Replays a hot-key update log — a fixed employee population receiving a
long stream of salary updates, the paper's Section 8.4 update workload —
through ``ArchIS.apply_pending`` twice per cell: once row-at-a-time
(``batch_size=None``) and once through the :class:`BatchArchiver` at
each measured batch size.  Both applies must leave **byte-identical**
archive state (every H-table scan, the segment table and the segment
manager's counters are compared); the benchmark refuses to report a
speedup on divergent state.

The headline cell is the unsegmented archive (``umin=None``): per-key
version chains grow long, so row-at-a-time apply re-scans an ever longer
history per log entry while the batch path reads each key's history once
per apply run.  The segmented cell (``umin=0.4``) is freeze-dominated —
segment rewrites cost the same on both paths — and is reported to show
the batch path never loses when clustering keeps chains short.

The third cell runs the segmented shape with ``maintenance="background"``:
the apply path pays only the logical freeze switch and the sorted
rewrites run on the maintenance worker, so the batched apply must beat
the inline row-at-a-time baseline by at least ``BACKGROUND_TARGET`` and
its per-batch p99 must stay within ``P99_CEILING`` of the unsegmented
cell's (no freeze ever stalls a batch).  The worker is drained *outside*
the timed window and the drained state is compared rid-free (the
deferred rewrite relocates rows; content must still match exactly).

Run directly::

    PYTHONPATH=src python benchmarks/bench_ingest.py            # full (50k entries)
    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke    # CI-sized

Emits ``BENCH_ingest.json`` next to this file (``--out`` overrides) —
each batch record carries p95/p99 per-batch apply latency taken from the
``ingest.seconds`` histogram via :meth:`Histogram.quantile` — and exits
non-zero if any measured batch size is slower than row-at-a-time (the
freeze-dominated segmented cell gates at ``NOISE_FLOOR`` since its true
ratio is ~1.0x and single machines swing +/-10%) or any cell's archive
state diverges.
"""

import argparse
import json
import os
import random
import sys
import time

from repro import ArchIS, ArchISConfig
from repro.obs import get_registry
from repro.rdb import ColumnType, Database

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "BENCH_ingest.json")

#: measured batch sizes; the acceptance target applies to sizes >= 64
BATCH_SIZES = (1, 64, 256)

#: speedup floor for freeze-dominated cells (freezes > 0).  Segment
#: rewrites cost the same on both paths, so the true ratio sits at
#: ~1.0x and single machines swing +/-10%; the unsegmented headline
#: cell still gates at a strict 1.0.
NOISE_FLOOR = 0.85

#: speedup floor for the background-maintenance segmented cell: with the
#: sorted rewrites off the apply path, batched apply must clearly beat
#: the inline row-at-a-time baseline
BACKGROUND_TARGET = 2.0

#: per-batch p99 latency ceiling for the background cell, as a multiple
#: of the unsegmented cell's p99 at the same batch size
P99_CEILING = 3.0


def build_workload(
    umin: float | None,
    entries: int,
    population: int,
    min_segment_rows: int = 256,
    seed: int = 20060403,
    maintenance: str = "inline",
) -> ArchIS:
    """A tracked database whose update log holds ``entries`` pending
    changes: ``population`` employees inserted once, then updated
    round-robin-randomly so per-key version chains grow long."""
    rng = random.Random(seed)
    db = Database()
    db.set_date("1990-01-01")
    db.create_table(
        "emp",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
            ("title", ColumnType.VARCHAR),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(
        db,
        config=ArchISConfig(
            umin=umin,
            min_segment_rows=min_segment_rows,
            maintenance=maintenance,
        ),
    )
    archis.track_table("emp")
    table = db.table("emp")
    rids = {}
    rows = {}
    day = db.current_date
    for number in range(1, population + 1):
        row = (number, f"n{number}", 30000 + number, f"t{number % 7}")
        rids[number] = table.insert(row)
        rows[number] = row
    keys = list(rids)
    produced = population
    while produced < entries:
        day += rng.randint(0, 1)
        db.advance_to(day)
        key = rng.choice(keys)
        old = rows[key]
        new = (old[0], old[1], 30000 + rng.randint(0, 50000), old[3])
        rids[key] = table.update_rid(rids[key], new)
        rows[key] = new
        produced += 1
    return archis


def archive_state(archis: ArchIS, with_rids: bool = True) -> dict:
    """Everything observable about the archive: every H-table's rows
    (with rids, or rid-free for background cells whose deferred rewrite
    relocates rows), the segment table, and the segment-manager
    counters."""
    state = {}
    for relation in archis.relations.values():
        for table_name in relation.all_tables():
            table = archis.db.table(table_name)
            state[table_name] = (
                list(table.scan()) if with_rids else sorted(table.rows())
            )
    state["__segments"] = sorted(archis.db.table("segment").rows())
    segments = archis.segments
    state["__counters"] = (
        segments.live_segno,
        segments.live_start,
        segments.last_change,
        segments.stats.live,
        segments.stats.total,
        segments.freeze_count,
    )
    return state


def measure_apply(
    umin, entries, population, batch_size, repeats, maintenance="inline"
):
    """Best-of-``repeats`` apply time (fresh workload per run) plus the
    final run's archive state, applied count, and the best run's
    per-batch apply-latency quantiles from ``ingest.seconds``.

    Only the apply itself is timed; in background mode the worker is
    drained after the clock stops, so the measurement is exactly the
    ingest-path latency the mode is supposed to shrink."""
    per_batch = get_registry().histogram("ingest.seconds")
    best = None
    quantiles = {}
    for _ in range(repeats):
        archis = build_workload(
            umin, entries, population, maintenance=maintenance
        )
        per_batch.reset()  # isolate this run's per-batch latencies
        started = time.perf_counter()
        applied = archis.apply_pending(batch_size=batch_size)
        seconds = time.perf_counter() - started
        archis.drain_maintenance()
        if best is None or seconds < best:
            best = seconds
            quantiles = per_batch.quantiles()
    return best, applied, archis, quantiles


def run_cell(umin, entries, population, repeats, maintenance="inline"):
    """Measure one (umin, workload, maintenance) cell across all batch
    sizes.  The row-at-a-time baseline always runs inline — the seed
    behavior every mode is compared against."""
    row_seconds, applied, archis, _ = measure_apply(
        umin, entries, population, None, repeats
    )
    # background rewrites relocate rows, so those cells compare content
    # rid-free; inline cells keep the stricter byte-identical check
    with_rids = maintenance == "inline"
    reference = archive_state(archis, with_rids)

    cell = {
        "umin": umin,
        "entries": entries,
        "population": population,
        "maintenance": maintenance,
        "applied": applied,
        "freezes": archis.segments.freeze_count,
        "row_seconds": round(row_seconds, 3),
        "row_entries_per_second": round(applied / row_seconds, 1),
        "batch": [],
    }
    for batch_size in BATCH_SIZES:
        seconds, applied, archis, quantiles = measure_apply(
            umin, entries, population, batch_size, repeats, maintenance
        )
        cell["batch"].append(
            {
                "batch_size": batch_size,
                "seconds": round(seconds, 3),
                "entries_per_second": round(applied / seconds, 1),
                "speedup": round(row_seconds / seconds, 2),
                "batches": -(-applied // batch_size),
                "batch_p95_ms": round(quantiles["p95"] * 1000, 3),
                "batch_p99_ms": round(quantiles["p99"] * 1000, 3),
                "identical": archive_state(archis, with_rids) == reference,
            }
        )
        archis.close()
    return cell


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload (seconds, not minutes)",
    )
    parser.add_argument(
        "--out",
        default=RESULTS_PATH,
        help="where to write the JSON results (default: BENCH_ingest.json)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # the segmented background cell is content-gated only in smoke
        # (too small to time), so CI still proves mode equivalence
        shapes = [(None, 3000, 50, "inline"), (0.4, 3000, 50, "background")]
        repeats = 1
    else:
        shapes = [
            (None, 50000, 500, "inline"),
            (0.4, 50000, 500, "inline"),
            (0.4, 50000, 500, "background"),
        ]
        repeats = 2  # best-of-2: the segmented cell sits near 1.0x and
        # single samples carry ~10% machine noise

    cells = []
    for umin, entries, population, maintenance in shapes:
        cell = run_cell(umin, entries, population, repeats, maintenance)
        cells.append(cell)
        print(
            f"umin={umin} entries={entries} pop={population} "
            f"maintenance={maintenance}: "
            f"row={cell['row_seconds']}s "
            + " ".join(
                f"b{b['batch_size']}={b['seconds']}s({b['speedup']}x"
                f"{'' if b['identical'] else ' DIVERGED'})"
                for b in cell["batch"]
            ),
            flush=True,
        )

    payload = {"smoke": args.smoke, "cells": cells}
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    unsegmented = next(
        (c for c in cells if c["umin"] is None), None
    )

    failed = False
    for cell in cells:
        background = cell["maintenance"] == "background"
        for b in cell["batch"]:
            if not b["identical"]:
                print(
                    f"FAIL: batch_size={b['batch_size']} umin={cell['umin']} "
                    f"maintenance={cell['maintenance']} "
                    "archive state diverged from row-at-a-time apply",
                    file=sys.stderr,
                )
                failed = True
            if b["batch_size"] < 64:
                continue
            if background:
                if args.smoke:
                    continue  # content-gated only at smoke scale
                if b["speedup"] < BACKGROUND_TARGET:
                    print(
                        f"FAIL: batch_size={b['batch_size']} background "
                        f"maintenance speedup {b['speedup']}x below the "
                        f"{BACKGROUND_TARGET}x target",
                        file=sys.stderr,
                    )
                    failed = True
                if unsegmented is not None:
                    baseline = next(
                        x
                        for x in unsegmented["batch"]
                        if x["batch_size"] == b["batch_size"]
                    )
                    ceiling = baseline["batch_p99_ms"] * P99_CEILING
                    if b["batch_p99_ms"] >= ceiling:
                        print(
                            f"FAIL: batch_size={b['batch_size']} background "
                            f"per-batch p99 {b['batch_p99_ms']}ms breaches "
                            f"{ceiling:.3f}ms (unsegmented p99 x "
                            f"{P99_CEILING}) — a freeze stalled the "
                            "apply path",
                            file=sys.stderr,
                        )
                        failed = True
                continue
            floor = NOISE_FLOOR if cell["freezes"] else 1.0
            if b["speedup"] < floor:
                print(
                    f"FAIL: batch_size={b['batch_size']} umin={cell['umin']} "
                    f"slower than row-at-a-time ({b['speedup']}x, "
                    f"floor {floor}x)",
                    file=sys.stderr,
                )
                failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
