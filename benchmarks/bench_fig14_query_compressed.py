"""Fig. 14: query performance with compression.

Paper: ArchIS keeps its large advantage on compressed data (Q2 67x on
ATLaS / 37x on DB2 vs Tamino; Q5 46x / 26x), and ATLaS's compressed
performance is "very close" to uncompressed, because snapshot queries only
decompress the few BlockZIP blocks covering their segment.
"""

from repro.bench import (
    averaged,
    compare_engines,
    print_comparison,
    run_archis_cold,
)

PAPER_NOTES = {
    "Q2": "paper: 67x (ATLaS) / 37x (DB2) vs Tamino",
    "Q5": "paper: 46x / 26x",
    "Q6": "paper: 6s via one-scan UDA",
}


def test_fig14_table(setup_compressed, queries):
    results = compare_engines(setup_compressed, queries, repeats=2)
    print_comparison(
        "Fig. 14: compressed ArchIS vs native XML DB", results, PAPER_NOTES
    )
    for key in ("Q1", "Q2", "Q5"):
        pair = results[key]
        assert pair["archis"].seconds < pair["native"].seconds, (
            f"{key}: compressed ArchIS should still beat the native store"
        )


def test_compressed_snapshot_near_uncompressed(setup_compressed, setup_atlas, queries):
    """Snapshot cost with compression stays in the same ballpark
    (paper: "the performance with compression is very close to that
    without compression" on ATLaS)."""
    q2 = queries[1]
    compressed = averaged(
        lambda: run_archis_cold(setup_compressed.archis, q2), 3
    )
    plain = averaged(lambda: run_archis_cold(setup_atlas.archis, q2), 3)
    assert compressed.seconds < plain.seconds * 10, (
        f"compressed snapshot {compressed.seconds*1000:.1f}ms vs "
        f"plain {plain.seconds*1000:.1f}ms"
    )


def test_snapshot_decompresses_fraction_of_blocks(setup_compressed):
    """The BlockZIP payoff: a snapshot touches a strict subset of blocks."""
    archis = setup_compressed.archis
    info = archis.archive.compressed_tables["employee_salary"]
    segments = [s for s, _, _ in archis.segments.archived_segments()]
    assert len(segments) >= 2, "need several frozen segments for this check"
    one = archis.archive.blocks_touched("employee_salary", segments[:1])
    total = info.blocks
    assert one < total, (
        f"one segment should need fewer than all {total} blocks, got {one}"
    )


def test_one_scan_temporal_join(setup_compressed, queries):
    """Section 8.3: the ATLaS user-defined aggregate computes Q6 in one
    scan and agrees with the translated SQL join."""
    from repro.util.timeutil import parse_date

    archis = setup_compressed.archis
    after = parse_date(setup_compressed.generator.mid_history_date())
    uda = archis.max_increase_one_scan("employee", "salary", after, 730)
    joined = archis.xquery(queries[6].xquery, allow_fallback=False)
    assert uda == joined[0]


def test_q2_compressed_archis(benchmark, setup_compressed, queries):
    benchmark(lambda: run_archis_cold(setup_compressed.archis, queries[1]))


def test_q5_compressed_archis(benchmark, setup_compressed, queries):
    benchmark(lambda: run_archis_cold(setup_compressed.archis, queries[4]))
