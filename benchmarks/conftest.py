"""Shared benchmark fixtures: populated engines at the evaluation scale.

All setups share one generated event stream (same seed), so every engine
variant answers over the same history — the paper's single-dataset,
many-systems methodology.
"""

import pytest

from repro.bench import (
    build_setup,
    default_queries,
    verify_equivalence,
)

EMPLOYEES = 50
YEARS = 17


@pytest.fixture(scope="session")
def setup_atlas():
    """ArchIS-ATLaS, segmented (U_min = 0.4), uncompressed + Tamino-like."""
    setup = build_setup(
        employees=EMPLOYEES, years=YEARS, profile="atlas", umin=0.4
    )
    verify_equivalence(setup, default_queries(setup.generator))
    return setup


@pytest.fixture(scope="session")
def setup_db2():
    """ArchIS-DB2 (trigger tracking), segmented, uncompressed."""
    return build_setup(
        employees=EMPLOYEES, years=YEARS, profile="db2", umin=0.4
    )


@pytest.fixture(scope="session")
def setup_unsegmented():
    """ArchIS without segment clustering (the Fig. 9 comparison point)."""
    return build_setup(
        employees=EMPLOYEES, years=YEARS, profile="atlas", umin=None
    )


@pytest.fixture(scope="session")
def setup_compressed():
    """ArchIS with BlockZIPed frozen segments (Section 8)."""
    setup = build_setup(
        employees=EMPLOYEES, years=YEARS, profile="atlas", umin=0.4,
        compress=True,
    )
    verify_equivalence(setup, default_queries(setup.generator))
    return setup


@pytest.fixture(scope="session")
def queries(setup_atlas):
    return default_queries(setup_atlas.generator)
