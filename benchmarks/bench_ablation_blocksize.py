"""Ablation: BlockZIP block size.

The paper fixes 4000-byte blocks (§8.2).  This ablation sweeps the block
size and shows the trade-off the choice balances: smaller blocks mean a
snapshot decompresses fewer bytes but compression ratios worsen (zlib has
less context per block) and block-table overhead grows.
"""

import pytest

from repro.archis.compression import compress_records
from repro.bench import format_table

BLOCK_SIZES = [500, 1000, 4000, 16000, 64000]


def sample_rows(n=6000):
    return [
        (100000 + i, 40000 + (i % 211) * 17, 6000 + i % 900, 6400 + i % 900, 1 + i // 1500)
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def sweep():
    rows = sample_rows()
    raw_bytes = len(rows) * 45  # approx encoded row size
    out = {}
    for size in BLOCK_SIZES:
        blocks = compress_records(rows, block_size=size)
        compressed = sum(len(b.data) for b in blocks)
        out[size] = {
            "blocks": len(blocks),
            "compressed": compressed,
            "ratio": compressed / raw_bytes,
            "rows_per_block": len(rows) / len(blocks),
        }
    return out


def test_ablation_table(sweep):
    rows = [
        [
            size,
            info["blocks"],
            f"{info['rows_per_block']:.0f}",
            f"{info['compressed']:,}",
            f"{info['ratio']:.3f}",
        ]
        for size, info in sweep.items()
    ]
    print(
        "\n== ablation: BlockZIP block size (paper uses 4000 B) ==\n"
        + format_table(
            ["block bytes", "blocks", "rows/block", "compressed bytes", "ratio"],
            rows,
        )
    )


def test_smaller_blocks_cost_compression(sweep):
    assert sweep[500]["compressed"] >= sweep[64000]["compressed"], (
        "tiny blocks should compress worse than huge ones"
    )


def test_smaller_blocks_give_finer_access(sweep):
    assert sweep[500]["blocks"] > sweep[64000]["blocks"] * 4


def test_paper_choice_is_reasonable(sweep):
    """4000 B sits within ~15% of the best ratio while giving much finer
    access granularity than the huge-block extreme."""
    best = min(info["compressed"] for info in sweep.values())
    assert sweep[4000]["compressed"] <= best * 1.15
    assert sweep[4000]["blocks"] >= sweep[64000]["blocks"] * 2
