"""Property-based tests for the interval algebra."""

from hypothesis import given, strategies as st

from repro.util.intervals import Interval, coalesce, restructure, sweep_aggregate

DAY = st.integers(min_value=0, max_value=20000)


@st.composite
def intervals(draw):
    start = draw(DAY)
    length = draw(st.integers(min_value=0, max_value=4000))
    return Interval(start, start + length)


@given(intervals(), intervals())
def test_overlaps_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(intervals(), intervals())
def test_intersect_matches_overlaps(a, b):
    shared = a.intersect(b)
    assert (shared is not None) == a.overlaps(b)
    if shared is not None:
        assert a.contains(shared) and b.contains(shared)


@given(intervals(), intervals())
def test_precedes_excludes_overlap(a, b):
    if a.precedes(b):
        assert not a.overlaps(b)


@given(intervals(), intervals())
def test_meets_implies_union_connected(a, b):
    if a.meets(b):
        merged = a.merge(b)
        assert merged.timespan() == a.timespan() + b.timespan()


@given(st.lists(intervals(), max_size=30))
def test_coalesce_is_maximal_and_sorted(ivs):
    out = coalesce(ivs)
    for left, right in zip(out, out[1:]):
        assert left.end + 1 < right.start  # disjoint with a true gap
    assert out == sorted(out)


@given(st.lists(intervals(), max_size=30))
def test_coalesce_preserves_covered_days(ivs):
    covered = set()
    for interval in ivs:
        covered.update(range(interval.start, interval.end + 1))
    out_covered = set()
    for interval in coalesce(ivs):
        out_covered.update(range(interval.start, interval.end + 1))
    assert covered == out_covered


@given(st.lists(intervals(), max_size=30))
def test_coalesce_is_idempotent(ivs):
    once = coalesce(ivs)
    assert coalesce(once) == once


@given(st.lists(intervals(), max_size=10), st.lists(intervals(), max_size=10))
def test_restructure_subset_of_both(left, right):
    for interval in restructure(left, right):
        for day in (interval.start, interval.end):
            assert any(x.contains_point(day) for x in left)
            assert any(x.contains_point(day) for x in right)


@given(
    st.lists(
        st.tuples(st.floats(min_value=1, max_value=1e6), intervals()),
        max_size=15,
    )
)
def test_sweep_aggregate_periods_are_disjoint_and_ordered(pairs):
    out = sweep_aggregate(pairs)
    for (_, left), (_, right) in zip(out, out[1:]):
        assert left.end < right.start


@given(
    st.lists(
        st.tuples(st.floats(min_value=1, max_value=1e6), intervals()),
        min_size=1,
        max_size=15,
    )
)
def test_sweep_average_pointwise_correct(pairs):
    out = sweep_aggregate(pairs)
    # Check the aggregate value at every period start against a brute force.
    for value, interval in out:
        live = [v for v, iv_ in pairs if iv_.contains_point(interval.start)]
        assert live, "aggregate reported a period with no live tuples"
        assert abs(sum(live) / len(live) - value) < 1e-6


@given(
    st.lists(
        st.tuples(st.floats(min_value=1, max_value=1e6), intervals()),
        max_size=15,
    )
)
def test_sweep_covers_exactly_the_live_days(pairs):
    out = sweep_aggregate(pairs)
    covered = set()
    for _, interval in out:
        covered.update(range(interval.start, interval.end + 1))
    expected = set()
    for _, interval in pairs:
        expected.update(range(interval.start, interval.end + 1))
    assert covered == expected
