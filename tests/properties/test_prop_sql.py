"""Property test: the SQL planner agrees with a naive Python reference,
with and without indexes."""

from hypothesis import given, settings, strategies as st

from repro.rdb import ColumnType, Database

COLUMNS = ["a", "b", "c"]


def null_safe(rows):
    return sorted(
        rows, key=lambda r: tuple((v is not None, v if v is not None else 0) for v in r)
    )

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 50),
        st.integers(0, 50),
        st.one_of(st.none(), st.integers(0, 50)),
    ),
    max_size=60,
)

predicate_strategy = st.lists(
    st.tuples(
        st.sampled_from(COLUMNS),
        st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
        st.integers(0, 50),
    ),
    min_size=1,
    max_size=3,
)


def reference_filter(rows, predicates):
    def match(row):
        for column, op, value in predicates:
            cell = row[COLUMNS.index(column)]
            if cell is None:
                return False
            if op == "=" and not cell == value:
                return False
            if op == "<>" and not cell != value:
                return False
            if op == "<" and not cell < value:
                return False
            if op == "<=" and not cell <= value:
                return False
            if op == ">" and not cell > value:
                return False
            if op == ">=" and not cell >= value:
                return False
        return True

    return null_safe(row for row in rows if match(row))


def run_sql(rows, predicates, with_index):
    db = Database()
    db.create_table("t", [(c, ColumnType.INT) for c in COLUMNS])
    table = db.table("t")
    for row in rows:
        table.insert(row)
    if with_index:
        db.sql("CREATE INDEX ix_a ON t (a)")
        db.sql("CREATE INDEX ix_bc ON t (b, c)")
    where = " AND ".join(
        f"{column} {op} {value}" for column, op, value in predicates
    )
    result = db.sql(f"SELECT a, b, c FROM t WHERE {where}")
    return null_safe(result.rows)


@settings(max_examples=60, deadline=None)
@given(rows_strategy, predicate_strategy)
def test_planner_matches_reference_without_index(rows, predicates):
    assert run_sql(rows, predicates, False) == reference_filter(rows, predicates)


@settings(max_examples=60, deadline=None)
@given(rows_strategy, predicate_strategy)
def test_planner_matches_reference_with_index(rows, predicates):
    assert run_sql(rows, predicates, True) == reference_filter(rows, predicates)


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_aggregates_match_reference(rows):
    db = Database()
    db.create_table("t", [(c, ColumnType.INT) for c in COLUMNS])
    for row in rows:
        db.table("t").insert(row)
    non_null_c = [r[2] for r in rows if r[2] is not None]
    result = db.sql("SELECT count(*), count(c), sum(c), min(c), max(c) FROM t")
    count_star, count_c, sum_c, min_c, max_c = result.first()
    assert count_star == len(rows)
    assert count_c == len(non_null_c)
    assert sum_c == (sum(non_null_c) if non_null_c else None)
    assert min_c == (min(non_null_c) if non_null_c else None)
    assert max_c == (max(non_null_c) if non_null_c else None)


@settings(max_examples=40, deadline=None)
@given(rows_strategy, st.sampled_from(COLUMNS))
def test_group_by_matches_reference(rows, key_column):
    db = Database()
    db.create_table("t", [(c, ColumnType.INT) for c in COLUMNS])
    for row in rows:
        db.table("t").insert(row)
    result = db.sql(f"SELECT {key_column}, count(*) FROM t GROUP BY {key_column}")
    got = dict(result.rows)
    expected: dict = {}
    key_pos = COLUMNS.index(key_column)
    for row in rows:
        expected[row[key_pos]] = expected.get(row[key_pos], 0) + 1
    assert got == expected
