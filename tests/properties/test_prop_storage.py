"""Property tests for the storage layer: record codec, pages, BlockZIP."""

from hypothesis import given, settings, strategies as st

from repro.archis.compression import compress_records, decompress_block, iter_all_rows
from repro.storage.page import SlottedPage
from repro.storage.record import decode_record, encode_record

field = st.one_of(
    st.none(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=60),
    st.binary(max_size=60),
)
rows = st.lists(
    st.tuples(st.integers(0, 10**6), field, field), max_size=120
)


@given(st.lists(field, max_size=12).map(tuple))
def test_record_codec_roundtrip(values):
    assert decode_record(encode_record(values)) == values


@given(st.lists(st.binary(min_size=1, max_size=300), max_size=40))
def test_slotted_page_roundtrip(payloads):
    page = SlottedPage()
    stored = []
    for payload in payloads:
        if page.free_space() < len(payload):
            break
        slot = page.insert(payload)
        stored.append((slot, payload))
    # survive serialization
    reloaded = SlottedPage(page.to_bytes())
    for slot, payload in stored:
        assert reloaded.read(slot) == payload


@given(st.lists(st.binary(min_size=1, max_size=120), min_size=2, max_size=30))
def test_slotted_page_delete_keeps_others(payloads):
    page = SlottedPage()
    slots = []
    for payload in payloads:
        if page.free_space() < len(payload):
            break
        slots.append((page.insert(payload), payload))
    if len(slots) < 2:
        return
    victim = slots[0][0]
    page.delete(victim)
    assert page.read(victim) is None
    for slot, payload in slots[1:]:
        assert page.read(slot) == payload


@settings(max_examples=40, deadline=None)
@given(rows, st.integers(min_value=200, max_value=8000))
def test_blockzip_roundtrip(data, block_size):
    blocks = compress_records(data, block_size=block_size)
    assert list(iter_all_rows(blocks)) == data


@settings(max_examples=40, deadline=None)
@given(rows)
def test_blockzip_sids_partition_input(data):
    blocks = compress_records(data)
    covered = []
    for block in blocks:
        covered.extend(range(block.start_sid, block.end_sid + 1))
    assert covered == list(range(len(data)))


@settings(max_examples=30, deadline=None)
@given(rows, st.integers(min_value=300, max_value=4000))
def test_blockzip_random_block_access(data, block_size):
    blocks = compress_records(data, block_size=block_size)
    for block in blocks:
        assert (
            decompress_block(block)
            == data[block.start_sid : block.end_sid + 1]
        )
