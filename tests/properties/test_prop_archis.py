"""Property tests: randomized update histories preserve ArchIS invariants.

The generator drives a random sequence of inserts/updates/deletes through
two ArchIS instances (segmented and unsegmented); the published H-documents
and snapshot answers must be identical, and the segmented archive must
satisfy the paper's covering conditions.
"""

from hypothesis import given, settings, strategies as st

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database
from repro.util.intervals import Interval
from repro.util.timeutil import FOREVER
from repro.xmlkit import serialize


def build_pair():
    out = []
    for umin in (0.5, None):
        db = Database()
        db.set_date("1990-01-01")
        db.create_table(
            "item",
            [("id", ColumnType.INT), ("price", ColumnType.INT)],
            primary_key=("id",),
        )
        archis = ArchIS(db, config=ArchISConfig(
            profile="db2", umin=umin, min_segment_rows=6))
        archis.track_table("item", document_name="items.xml")
        out.append(archis)
    return out


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=1, max_value=6),  # key
        st.integers(min_value=1, max_value=500),  # price
        st.integers(min_value=0, max_value=40),  # days to advance
    ),
    max_size=40,
)


def apply_ops(archis: ArchIS, ops) -> None:
    table = archis.db.table("item")
    live = set()
    for op, key, price, advance in ops:
        archis.db.advance_days(advance)
        if op == "insert":
            if key not in live:
                table.insert((key, price))
                live.add(key)
        elif op == "update":
            if key in live:
                table.update_where(lambda r, k=key: r["id"] == k, {"price": price})
        elif op == "delete":
            if key in live:
                table.delete_where(lambda r, k=key: r["id"] == k)
                live.discard(key)
    archis.apply_pending()


@settings(max_examples=30, deadline=None)
@given(operations)
def test_publication_independent_of_segmentation(ops):
    segmented, unsegmented = build_pair()
    apply_ops(segmented, ops)
    apply_ops(unsegmented, ops)
    a = serialize(segmented.publish("item"))
    b = serialize(unsegmented.publish("item"))
    assert a == b


@settings(max_examples=30, deadline=None)
@given(operations, st.integers(min_value=0, max_value=1200))
def test_snapshot_independent_of_segmentation(ops, offset):
    segmented, unsegmented = build_pair()
    apply_ops(segmented, ops)
    apply_ops(unsegmented, ops)
    date = segmented.db.current_date - offset
    if date < 0:
        return
    a = sorted(segmented.snapshot_rows("item", "price", date).rows)
    b = sorted(unsegmented.snapshot_rows("item", "price", date).rows)
    assert a == b


@settings(max_examples=30, deadline=None)
@given(operations)
def test_covering_conditions_hold(ops):
    segmented, _ = build_pair()
    apply_ops(segmented, ops)
    periods = dict(
        (segno, (segstart, segend))
        for segno, segstart, segend in segmented.segments.archived_segments()
    )
    table = segmented.db.table("item_price")
    for row in table.rows():
        _, _, tstart, tend, segno = row
        if segno in periods:
            segstart, segend = periods[segno]
            assert tstart <= segend
            assert tend >= segstart


@settings(max_examples=30, deadline=None)
@given(operations)
def test_history_intervals_never_overlap_per_key(ops):
    """Attribute history invariant: per key, versions form disjoint,
    chronologically ordered intervals."""
    _, unsegmented = build_pair()
    apply_ops(unsegmented, ops)
    by_key: dict[int, list[Interval]] = {}
    for key, _, tstart, tend in unsegmented.history("item", "price"):
        by_key.setdefault(key, []).append(Interval(tstart, tend))
    for intervals in by_key.values():
        ordered = sorted(intervals)
        for left, right in zip(ordered, ordered[1:]):
            assert left.end < right.start


@settings(max_examples=30, deadline=None)
@given(operations)
def test_current_rows_match_live_history(ops):
    """The tuples with tend == forever are exactly the current table."""
    _, unsegmented = build_pair()
    apply_ops(unsegmented, ops)
    current = {
        (row[0], row[1]) for row in unsegmented.db.table("item").rows()
    }
    live_history = {
        (key, value)
        for key, value, _, tend in unsegmented.history("item", "price")
        if tend == FOREVER
    }
    assert current == live_history
