"""Property test: the optimizer never changes a query's answer.

For random tables, indexes and WHERE clauses, the optimized plan (index
scans, hash joins, folded constants) must return exactly the rows the
naive logical plan returns.
"""

from hypothesis import given, settings, strategies as st

from repro.rdb import Database

COLUMNS = ["a", "b", "c"]

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 20),
        st.integers(0, 20),
        st.one_of(st.none(), st.integers(0, 20)),
    ),
    max_size=40,
)

predicate_strategy = st.lists(
    st.tuples(
        st.sampled_from(COLUMNS),
        st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]),
        st.integers(0, 20),
    ),
    min_size=0,
    max_size=3,
)

index_strategy = st.sampled_from(
    [None, ("a",), ("b",), ("a", "b"), ("b", "c")]
)


def build_db(rows, index_columns):
    db = Database()
    db.sql("CREATE TABLE t (a INT, b INT, c INT)")
    table = db.table("t")
    for row in rows:
        table.insert(row)
    if index_columns is not None:
        table.create_index("t_ix", index_columns)
    return db


def where_clause(predicates):
    if not predicates:
        return ""
    conjuncts = [f"{col} {op} {value}" for col, op, value in predicates]
    return " WHERE " + " AND ".join(conjuncts)


def run_both(db, sql):
    optimized = sorted(db.sql(sql).rows, key=repr)
    db.optimizer_enabled = False
    try:
        naive = sorted(db.sql(sql).rows, key=repr)
    finally:
        db.optimizer_enabled = True
    return optimized, naive


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy, predicates=predicate_strategy, index=index_strategy)
def test_single_table_select_equivalence(rows, predicates, index):
    db = build_db(rows, index)
    sql = f"SELECT a, b, c FROM t{where_clause(predicates)}"
    optimized, naive = run_both(db, sql)
    assert optimized == naive


@settings(max_examples=40, deadline=None)
@given(
    left=rows_strategy,
    right=st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=20
    ),
    predicates=predicate_strategy,
    index=index_strategy,
)
def test_join_equivalence(left, right, predicates, index):
    db = build_db(left, index)
    db.sql("CREATE TABLE s (x INT, y INT)")
    table = db.table("s")
    for row in right:
        table.insert(row)
    conjuncts = [f"t.{col} {op} {value}" for col, op, value in predicates]
    where = " AND ".join(["t.a = s.x", *conjuncts])
    sql = f"SELECT t.a, t.b, s.y FROM t, s WHERE {where}"
    optimized, naive = run_both(db, sql)
    assert optimized == naive


@settings(max_examples=40, deadline=None)
@given(
    rows=rows_strategy,
    value=st.integers(-5, 25),
    factor=st.integers(0, 4),
)
def test_constant_folding_equivalence(rows, value, factor):
    db = build_db(rows, None)
    sql = f"SELECT a FROM t WHERE a >= {value} - {factor} * 2"
    optimized, naive = run_both(db, sql)
    assert optimized == naive
