"""Property tests: SQL-native FOR SYSTEM_TIME agrees with every other
time-travel surface, whatever the storage layout.

For random update histories, on unsegmented, segmented and sharded
(1 and 4 shards) archives alike:

- ``FOR SYSTEM_TIME AS OF d`` returns exactly ``snapshot_rows(d)``;
- ``FOR SYSTEM_TIME FROM lo TO hi`` returns exactly the versions whose
  intervals overlap the closed-open window — the same rows a hand-written
  ``tstart/tend`` predicate selects on the full history.
"""

from hypothesis import given, settings, strategies as st

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database


def build_variants():
    variants = []
    for label, overrides in (
        ("unsegmented", dict(umin=None)),
        ("segmented", dict(umin=0.5)),
        # sharding needs log tracking, i.e. the atlas profile
        ("sharded1", dict(profile="atlas", shards=1, shard_by="hash")),
        ("sharded4", dict(profile="atlas", shards=4, shard_by="hash")),
    ):
        db = Database()
        db.set_date("1990-01-01")
        db.create_table(
            "item",
            [("id", ColumnType.INT), ("price", ColumnType.INT)],
            primary_key=("id",),
        )
        settings_ = dict(profile="db2", min_segment_rows=6)
        settings_.update(overrides)
        archis = ArchIS(db, config=ArchISConfig(**settings_))
        archis.track_table("item", document_name="items.xml")
        variants.append((label, archis))
    return variants


operations = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=1, max_value=6),  # key
        st.integers(min_value=1, max_value=500),  # price
        st.integers(min_value=0, max_value=40),  # days to advance
    ),
    max_size=30,
)


def apply_ops(archis: ArchIS, ops) -> None:
    table = archis.db.table("item")
    live = set()
    for op, key, price, advance in ops:
        archis.db.advance_days(advance)
        if op == "insert":
            if key not in live:
                table.insert((key, price))
                live.add(key)
        elif op == "update":
            if key in live:
                table.update_where(
                    lambda r, k=key: r["id"] == k, {"price": price}
                )
        elif op == "delete":
            if key in live:
                table.delete_where(lambda r, k=key: r["id"] == k)
                live.discard(key)
    archis.apply_pending()


@settings(max_examples=10, deadline=None)
@given(operations, st.integers(min_value=0, max_value=1200))
def test_as_of_matches_snapshot_rows_on_every_layout(ops, offset):
    for label, archis in build_variants():
        apply_ops(archis, ops)
        date = archis.db.current_date - offset
        if date < 0:
            return
        got = archis.sql(
            "SELECT t.id, t.price FROM item_price t "
            "FOR SYSTEM_TIME AS OF :d ORDER BY t.id, t.price",
            {"d": date},
        ).rows
        want = sorted(
            (row[0], row[1])
            for row in archis.snapshot_rows("item", "price", date).rows
        )
        assert [tuple(r) for r in got] == want, label


@settings(max_examples=10, deadline=None)
@given(
    operations,
    st.integers(min_value=0, max_value=1200),
    st.integers(min_value=1, max_value=400),
)
def test_from_to_matches_manual_window_on_every_layout(ops, start, width):
    lo, hi = start, start + width
    expected = None
    for label, archis in build_variants():
        apply_ops(archis, ops)
        got = archis.sql(
            "SELECT t.id, t.price, t.tstart, t.tend FROM item_price t "
            "FOR SYSTEM_TIME FROM :lo TO :hi "
            "ORDER BY t.id, t.tstart, t.price",
            {"lo": lo, "hi": hi},
        ).rows
        spelled = archis.sql(
            "SELECT t.id, t.price, t.tstart, t.tend FROM item_price t "
            "WHERE t.tstart < :hi AND t.tend >= :lo "
            "ORDER BY t.id, t.tstart, t.price",
            {"lo": lo, "hi": hi},
        ).rows
        assert got == spelled, label
        if expected is None:
            expected = got
        else:
            # every storage layout answers the same window identically
            assert got == expected, label
