"""Property-based tests: the B+ tree behaves like a sorted multimap."""

from hypothesis import given, settings, strategies as st

from repro.index.bptree import BPlusTree

KEYS = st.integers(min_value=0, max_value=200)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(KEYS, st.integers()), max_size=200), st.integers(4, 16))
def test_matches_reference_multimap(entries, order):
    tree = BPlusTree(order=order)
    reference: dict[int, list[int]] = {}
    for key, value in entries:
        tree.insert((key,), value)
        reference.setdefault(key, []).append(value)
    tree.check_invariants()
    for key, values in reference.items():
        assert sorted(tree.search((key,))) == sorted(values)
    assert [k[0] for k in tree.keys()] == sorted(reference)
    assert len(tree) == sum(len(v) for v in reference.values())


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(KEYS, st.integers(0, 5)), max_size=150),
    st.lists(KEYS, max_size=80),
    st.integers(4, 12),
)
def test_interleaved_deletes(entries, deletions, order):
    tree = BPlusTree(order=order)
    reference: dict[int, list[int]] = {}
    for key, value in entries:
        tree.insert((key,), value)
        reference.setdefault(key, []).append(value)
    for key in deletions:
        expected = key in reference
        assert tree.delete((key,)) == expected
        reference.pop(key, None)
        tree.check_invariants()
    assert [k[0] for k in tree.keys()] == sorted(reference)


@settings(max_examples=60, deadline=None)
@given(st.lists(KEYS, max_size=150), KEYS, KEYS)
def test_range_matches_filter(keys, low, high):
    if low > high:
        low, high = high, low
    tree = BPlusTree(order=8)
    for key in keys:
        tree.insert((key,), key)
    got = [k[0] for k, _ in tree.range((low,), (high,))]
    expected = sorted(k for k in keys if low <= k <= high)
    assert got == expected
