"""Tests for heap files and the blob store."""

import pytest

from repro.errors import StorageError
from repro.storage.blob import BlobStore
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import Pager


@pytest.fixture
def pool():
    return BufferPool(Pager(), capacity=64)


class TestHeapFile:
    def test_insert_read(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1, "Bob", 60000))
        assert heap.read(rid) == (1, "Bob", 60000)

    def test_many_inserts_span_pages(self, pool):
        heap = HeapFile(pool)
        rids = [heap.insert((i, "name" * 20, i * 10)) for i in range(500)]
        assert heap.page_count > 1
        assert heap.read(rids[499]) == (499, "name" * 20, 4990)

    def test_scan_returns_all_in_order(self, pool):
        heap = HeapFile(pool)
        for i in range(100):
            heap.insert((i,))
        assert [row[0] for _, row in heap.scan()] == list(range(100))

    def test_delete_removes_from_scan(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1,))
        keep = heap.insert((2,))
        heap.delete(rid)
        assert [row for _, row in heap.scan()] == [(2,)]
        assert heap.read(keep) == (2,)
        assert heap.record_count == 1

    def test_read_deleted_raises(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1,))
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_update_in_place(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1, "longer-value"))
        new_rid = heap.update(rid, (1, "short"))
        assert new_rid == rid
        assert heap.read(rid) == (1, "short")

    def test_update_relocates_when_bigger(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1, "a"))
        heap.insert((2, "b"))  # take the adjacent space
        new_rid = heap.update(rid, (1, "a" * 200))
        assert new_rid != rid
        assert heap.read(new_rid) == (1, "a" * 200)
        assert heap.record_count == 2

    def test_two_heaps_share_pool_but_not_pages(self, pool):
        a = HeapFile(pool, "a")
        b = HeapFile(pool, "b")
        a.insert((1,))
        b.insert((2,))
        assert set(a.page_numbers).isdisjoint(b.page_numbers)

    def test_truncate(self, pool):
        heap = HeapFile(pool)
        for i in range(10):
            heap.insert((i,))
        heap.truncate()
        assert list(heap.scan()) == []
        assert heap.record_count == 0

    def test_size_bytes(self, pool):
        heap = HeapFile(pool)
        heap.insert((1,))
        assert heap.size_bytes() == PAGE_SIZE


class TestBlobStore:
    def test_roundtrip_small(self, pool):
        store = BlobStore(pool)
        blob_id = store.put(b"compressed-bytes")
        assert store.get(blob_id) == b"compressed-bytes"

    def test_roundtrip_multi_page(self, pool):
        store = BlobStore(pool)
        data = bytes(range(256)) * 64  # 16 KiB
        blob_id = store.put(data)
        assert store.get(blob_id) == data

    def test_exact_page_boundary(self, pool):
        store = BlobStore(pool)
        data = b"p" * PAGE_SIZE
        assert store.get(store.put(data)) == data

    def test_empty_blob(self, pool):
        store = BlobStore(pool)
        assert store.get(store.put(b"")) == b""

    def test_distinct_ids(self, pool):
        store = BlobStore(pool)
        a = store.put(b"a")
        b = store.put(b"b")
        assert a != b
        assert store.get(a) == b"a"

    def test_delete(self, pool):
        store = BlobStore(pool)
        blob_id = store.put(b"x")
        store.delete(blob_id)
        assert blob_id not in store
        with pytest.raises(StorageError):
            store.get(blob_id)

    def test_unknown_id_raises(self, pool):
        with pytest.raises(StorageError):
            BlobStore(pool).get(42)

    def test_size_accounting(self, pool):
        store = BlobStore(pool)
        store.put(b"tiny")
        assert store.size_bytes() == PAGE_SIZE
        store.put(b"q" * (PAGE_SIZE + 1))
        assert store.size_bytes() == 3 * PAGE_SIZE

    def test_non_bytes_raises(self, pool):
        with pytest.raises(StorageError):
            BlobStore(pool).put("text")  # type: ignore[arg-type]
