"""Tests for heap files and the blob store."""

import pytest

from repro.errors import StorageError
from repro.storage.blob import BlobStore
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import Pager


@pytest.fixture
def pool():
    return BufferPool(Pager(), capacity=64)


class TestHeapFile:
    def test_insert_read(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1, "Bob", 60000))
        assert heap.read(rid) == (1, "Bob", 60000)

    def test_many_inserts_span_pages(self, pool):
        heap = HeapFile(pool)
        rids = [heap.insert((i, "name" * 20, i * 10)) for i in range(500)]
        assert heap.page_count > 1
        assert heap.read(rids[499]) == (499, "name" * 20, 4990)

    def test_scan_returns_all_in_order(self, pool):
        heap = HeapFile(pool)
        for i in range(100):
            heap.insert((i,))
        assert [row[0] for _, row in heap.scan()] == list(range(100))

    def test_delete_removes_from_scan(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1,))
        keep = heap.insert((2,))
        heap.delete(rid)
        assert [row for _, row in heap.scan()] == [(2,)]
        assert heap.read(keep) == (2,)
        assert heap.record_count == 1

    def test_read_deleted_raises(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1,))
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_update_in_place(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1, "longer-value"))
        new_rid = heap.update(rid, (1, "short"))
        assert new_rid == rid
        assert heap.read(rid) == (1, "short")

    def test_update_relocates_when_bigger(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1, "a"))
        heap.insert((2, "b"))  # take the adjacent space
        new_rid = heap.update(rid, (1, "a" * 200))
        assert new_rid != rid
        assert heap.read(new_rid) == (1, "a" * 200)
        assert heap.record_count == 2

    def test_two_heaps_share_pool_but_not_pages(self, pool):
        a = HeapFile(pool, "a")
        b = HeapFile(pool, "b")
        a.insert((1,))
        b.insert((2,))
        assert set(a.page_numbers).isdisjoint(b.page_numbers)

    def test_truncate(self, pool):
        heap = HeapFile(pool)
        for i in range(10):
            heap.insert((i,))
        heap.truncate()
        assert list(heap.scan()) == []
        assert heap.record_count == 0

    def test_size_bytes(self, pool):
        heap = HeapFile(pool)
        heap.insert((1,))
        assert heap.size_bytes() == PAGE_SIZE


class TestBulkPaths:
    """The batched read/write paths the freeze switch rides on."""

    def test_insert_many_matches_sequential_inserts(self, pool):
        one = HeapFile(pool, "one")
        many = HeapFile(pool, "many")
        rows = [(i, "name" * 10, i * 3) for i in range(300)]
        sequential = [one.insert(row) for row in rows]
        bulk = many.insert_many(rows)
        # identical rids (page offsets aside) and identical content
        assert [r[1] for r in bulk] == [r[1] for r in sequential]
        assert [row for _, row in many.scan()] == rows
        assert many.record_count == 300

    def test_insert_many_continues_a_partial_page(self, pool):
        heap = HeapFile(pool)
        heap.insert((0, "x"))
        rids = heap.insert_many([(1, "y"), (2, "z")])
        assert rids[0][0] == heap.page_numbers[0]  # same page as row 0
        assert [row for _, row in heap.scan()] == [(0, "x"), (1, "y"), (2, "z")]

    def test_insert_payloads_round_trips(self, pool):
        from repro.storage.record import encode_record

        heap = HeapFile(pool)
        rows = [(i, f"v{i}") for i in range(50)]
        heap.insert_payloads([encode_record(row) for row in rows])
        assert [row for _, row in heap.scan()] == rows

    def test_read_many_returns_rows_in_rid_order(self, pool):
        heap = HeapFile(pool)
        rows = [(i, "pad" * 30) for i in range(200)]
        rids = [heap.insert(row) for row in rows]
        shuffled = rids[::-2] + rids[::2]  # arbitrary page-hopping order
        want = [rows[rids.index(rid)] for rid in shuffled]
        assert heap.read_many(shuffled) == want

    def test_read_many_raises_on_deleted_record(self, pool):
        heap = HeapFile(pool)
        rid = heap.insert((1,))
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read_many([rid])

    def test_read_records_containing_prefilters_without_losing_matches(
        self, pool
    ):
        from repro.storage.record import encoded_int

        heap = HeapFile(pool)
        rids = [heap.insert((i, 999_999 if i % 3 == 0 else i)) for i in range(30)]
        hits = heap.read_records_containing(rids, encoded_int(999_999))
        assert [row for _, row in hits] == [
            (i, 999_999) for i in range(30) if i % 3 == 0
        ]

    def test_prune_empty_pages_keeps_surviving_rids(self, pool):
        heap = HeapFile(pool)
        rows = [(i, "pad" * 40) for i in range(300)]
        rids = [heap.insert(row) for row in rows]
        # empty out every page except the one holding the last record
        survivor = rids[-1]
        for rid in rids[:-1]:
            if rid[0] != survivor[0]:
                heap.delete(rid)
        before = heap.page_count
        dropped = heap.prune_empty_pages()
        assert dropped > 0
        assert heap.page_count == before - dropped
        assert heap.read(survivor) == rows[-1]
        # survivors on the kept page are still scannable
        kept = [row for _, row in heap.scan()]
        assert rows[-1] in kept


class TestBlobStore:
    def test_roundtrip_small(self, pool):
        store = BlobStore(pool)
        blob_id = store.put(b"compressed-bytes")
        assert store.get(blob_id) == b"compressed-bytes"

    def test_roundtrip_multi_page(self, pool):
        store = BlobStore(pool)
        data = bytes(range(256)) * 64  # 16 KiB
        blob_id = store.put(data)
        assert store.get(blob_id) == data

    def test_exact_page_boundary(self, pool):
        store = BlobStore(pool)
        data = b"p" * PAGE_SIZE
        assert store.get(store.put(data)) == data

    def test_empty_blob(self, pool):
        store = BlobStore(pool)
        assert store.get(store.put(b"")) == b""

    def test_distinct_ids(self, pool):
        store = BlobStore(pool)
        a = store.put(b"a")
        b = store.put(b"b")
        assert a != b
        assert store.get(a) == b"a"

    def test_delete(self, pool):
        store = BlobStore(pool)
        blob_id = store.put(b"x")
        store.delete(blob_id)
        assert blob_id not in store
        with pytest.raises(StorageError):
            store.get(blob_id)

    def test_unknown_id_raises(self, pool):
        with pytest.raises(StorageError):
            BlobStore(pool).get(42)

    def test_size_accounting(self, pool):
        store = BlobStore(pool)
        store.put(b"tiny")
        assert store.size_bytes() == PAGE_SIZE
        store.put(b"q" * (PAGE_SIZE + 1))
        assert store.size_bytes() == 3 * PAGE_SIZE

    def test_non_bytes_raises(self, pool):
        with pytest.raises(StorageError):
            BlobStore(pool).put("text")  # type: ignore[arg-type]
