"""Tests for slotted pages."""

import pytest

from repro.errors import PageFullError, StorageError
from repro.storage.page import PAGE_SIZE, SlottedPage


def test_new_page_is_empty():
    page = SlottedPage()
    assert page.slot_count == 0
    assert page.free_space() > 4000


def test_insert_and_read():
    page = SlottedPage()
    slot = page.insert(b"hello")
    assert page.read(slot) == b"hello"


def test_multiple_inserts_get_distinct_slots():
    page = SlottedPage()
    slots = [page.insert(f"rec{i}".encode()) for i in range(10)]
    assert slots == list(range(10))
    for i, slot in enumerate(slots):
        assert page.read(slot) == f"rec{i}".encode()


def test_free_space_shrinks():
    page = SlottedPage()
    before = page.free_space()
    page.insert(b"x" * 100)
    assert page.free_space() < before - 100


def test_page_full():
    page = SlottedPage()
    with pytest.raises(PageFullError):
        page.insert(b"x" * PAGE_SIZE)


def test_fill_until_full_then_roundtrip():
    page = SlottedPage()
    count = 0
    payload = b"y" * 64
    while page.free_space() >= len(payload):
        page.insert(payload)
        count += 1
    assert count > 40
    assert all(page.read(i) == payload for i in range(count))


def test_delete_tombstones():
    page = SlottedPage()
    slot = page.insert(b"doomed")
    page.delete(slot)
    assert page.read(slot) is None


def test_delete_keeps_other_slots_stable():
    page = SlottedPage()
    a = page.insert(b"a")
    b = page.insert(b"b")
    page.delete(a)
    assert page.read(b) == b"b"


def test_update_in_place_smaller():
    page = SlottedPage()
    slot = page.insert(b"longvalue")
    assert page.update_in_place(slot, b"short")
    assert page.read(slot) == b"short"


def test_update_in_place_too_big_returns_false():
    page = SlottedPage()
    slot = page.insert(b"ab")
    assert not page.update_in_place(slot, b"much longer payload")
    assert page.read(slot) == b"ab"


def test_update_deleted_slot_raises():
    page = SlottedPage()
    slot = page.insert(b"x")
    page.delete(slot)
    with pytest.raises(StorageError):
        page.update_in_place(slot, b"y")


def test_records_skips_tombstones():
    page = SlottedPage()
    page.insert(b"keep1")
    dead = page.insert(b"dead")
    page.insert(b"keep2")
    page.delete(dead)
    assert [p for _, p in page.records()] == [b"keep1", b"keep2"]


def test_serialization_roundtrip():
    page = SlottedPage()
    page.insert(b"persisted")
    clone = SlottedPage(page.to_bytes())
    assert clone.read(0) == b"persisted"


def test_bad_buffer_size_raises():
    with pytest.raises(StorageError):
        SlottedPage(b"tiny")


def test_out_of_range_slot_raises():
    page = SlottedPage()
    with pytest.raises(StorageError):
        page.read(0)


def test_empty_payload_raises():
    page = SlottedPage()
    with pytest.raises(StorageError):
        page.insert(b"")
