"""Tests for the binary record codec."""

import pytest

from repro.errors import StorageError
from repro.storage.record import decode_record, encode_record


def roundtrip(values):
    return decode_record(encode_record(values))


def test_ints():
    assert roundtrip((1, -5, 0)) == (1, -5, 0)


def test_large_ints():
    assert roundtrip((2**62, -(2**62))) == (2**62, -(2**62))


def test_floats():
    assert roundtrip((1.5, -2.25)) == (1.5, -2.25)


def test_strings():
    assert roundtrip(("Bob", "Sr Engineer", "")) == ("Bob", "Sr Engineer", "")


def test_unicode():
    assert roundtrip(("部門",)) == ("部門",)


def test_bytes():
    assert roundtrip((b"\x00\x01\xff",)) == (b"\x00\x01\xff",)


def test_nulls():
    assert roundtrip((None, 1, None, "x")) == (None, 1, None, "x")


def test_all_null():
    assert roundtrip((None, None)) == (None, None)


def test_empty_tuple():
    assert roundtrip(()) == ()


def test_bools_become_ints():
    assert roundtrip((True, False)) == (1, 0)


def test_mixed_row_like_htable():
    row = (100022, 40000, 6625, 6990)  # id, salary, tstart, tend
    assert roundtrip(row) == row


def test_unsupported_type_raises():
    with pytest.raises(StorageError):
        encode_record(({"a": 1},))


def test_oversized_string_raises():
    with pytest.raises(StorageError):
        encode_record(("x" * 70000,))


def test_decode_empty_raises():
    with pytest.raises(StorageError):
        decode_record(b"")


def test_decode_corrupt_tag_raises():
    good = encode_record((1,))
    bad = good[:2] + b"z" + good[3:]
    with pytest.raises(StorageError):
        decode_record(bad)


def test_encoded_int_is_the_field_encoding():
    from repro.storage.record import encoded_int

    # the pattern an int field contributes appears verbatim in any
    # record holding that value, so substring search is a sound prefilter
    assert encoded_int(42) in encode_record((1, "x", 42))
    assert encoded_int(43) not in encode_record((1, "x", 42))
