"""Tests for the pager and buffer pool, including IO accounting."""

import pytest

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import Pager


class TestPager:
    def test_memory_pager_allocate_read_write(self):
        pager = Pager()
        page_no = pager.allocate()
        pager.write_page(page_no, b"a" * PAGE_SIZE)
        assert pager.read_page(page_no) == b"a" * PAGE_SIZE

    def test_file_pager_persists(self, tmp_path):
        path = str(tmp_path / "data.db")
        with Pager(path) as pager:
            page_no = pager.allocate()
            pager.write_page(page_no, b"z" * PAGE_SIZE)
        with Pager(path) as pager:
            assert pager.page_count == 1
            assert pager.read_page(0) == b"z" * PAGE_SIZE

    def test_io_stats_count_physical_ops(self):
        pager = Pager()
        page_no = pager.allocate()
        pager.read_page(page_no)
        pager.read_page(page_no)
        stats = pager.io_stats()
        assert stats.reads == 2
        assert stats.allocations == 1

    def test_stats_delta(self):
        pager = Pager()
        page_no = pager.allocate()
        before = pager.io_stats()
        pager.read_page(page_no)
        assert pager.io_stats().delta(before).reads == 1

    def test_out_of_range_read_raises(self):
        pager = Pager()
        with pytest.raises(StorageError):
            pager.read_page(0)

    def test_wrong_size_write_raises(self):
        pager = Pager()
        page_no = pager.allocate()
        with pytest.raises(StorageError):
            pager.write_page(page_no, b"short")

    def test_truncate_resets(self):
        pager = Pager()
        pager.allocate()
        pager.truncate()
        assert pager.page_count == 0

    def test_closed_pager_raises(self):
        pager = Pager()
        pager.close()
        with pytest.raises(StorageError):
            pager.allocate()

    def test_size_bytes(self):
        pager = Pager()
        pager.allocate()
        pager.allocate()
        assert pager.size_bytes() == 2 * PAGE_SIZE


class TestBufferPool:
    def test_miss_then_hit(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        page_no = pool.allocate()
        pool.reset()  # cold
        pool.get(page_no)
        pool.get(page_no)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1

    def test_miss_costs_physical_read(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        page_no = pool.allocate()
        pool.reset()
        before = pager.io_stats()
        pool.get(page_no)
        pool.get(page_no)
        assert pager.io_stats().delta(before).reads == 1

    def test_lru_eviction(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=2)
        pages = [pool.allocate() for _ in range(3)]
        pool.reset()
        pool.get(pages[0])
        pool.get(pages[1])
        pool.get(pages[2])  # evicts pages[0]
        before = pager.io_stats()
        pool.get(pages[0])
        assert pager.io_stats().delta(before).reads == 1

    def test_write_through(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=2)
        page_no = pool.allocate()
        pool.put(page_no, b"q" * PAGE_SIZE)
        # Read through a fresh pool: data must already be on "disk".
        other = BufferPool(pager, capacity=2)
        assert other.get(page_no) == b"q" * PAGE_SIZE

    def test_reset_makes_reads_cold(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        page_no = pool.allocate()
        pool.get(page_no)
        pool.reset()
        pool.reset_stats()
        pool.get(page_no)
        assert pool.stats.misses == 1

    def test_hit_rate(self):
        pager = Pager()
        pool = BufferPool(pager, capacity=4)
        page_no = pool.allocate()
        pool.reset()
        pool.get(page_no)
        pool.get(page_no)
        assert pool.stats.hit_rate == 0.5

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(Pager(), capacity=0)

    def test_bad_page_image_raises(self):
        pool = BufferPool(Pager(), capacity=2)
        page_no = pool.allocate()
        with pytest.raises(StorageError):
            pool.put(page_no, b"bad")
