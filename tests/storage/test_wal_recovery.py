"""WAL + recovery tests: frame codec, pager transactions, crash matrix."""

import json
import os

import pytest

from repro.errors import StorageError
from repro.storage import BlobStore, BufferPool, InjectedCrash, get_crash_points
from repro.storage.page import PAGE_SIZE
from repro.storage.pager import Pager
from repro.storage.wal import WriteAheadLog


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "data.db")


@pytest.fixture(autouse=True)
def disarm_crash_points():
    yield
    get_crash_points().reset()


def page(fill: bytes) -> bytes:
    return fill * PAGE_SIZE


class TestWalFrames:
    def test_committed_frames_roundtrip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append_page(0, page(b"a"))
        wal.append_page(3, page(b"b"))
        wal.append_meta(".catalog.json", b'{"x": 1}')
        wal.append_commit()
        wal.close()
        pages, metas, report = WriteAheadLog(wal.path).scan()
        assert pages == {0: page(b"a"), 3: page(b"b")}
        assert metas == {".catalog.json": b'{"x": 1}'}
        assert report.replayed and report.commits == 1
        assert report.torn_bytes == 0

    def test_uncommitted_frames_discarded(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append_page(0, page(b"a"))
        wal.close()
        pages, metas, report = WriteAheadLog(wal.path).scan()
        assert pages == {} and metas == {}
        assert not report.replayed
        assert report.uncommitted_frames == 1

    def test_torn_tail_detected_after_commit(self, tmp_path):
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.append_page(0, page(b"a"))
        wal.append_commit()
        wal.append_page(1, page(b"b"))
        wal.close()
        # tear the last frame mid-payload
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - PAGE_SIZE // 2)
        pages, _, report = WriteAheadLog(path).scan()
        assert pages == {0: page(b"a")}  # first transaction survives
        assert report.torn_bytes > 0

    def test_bitflip_invalidates_frame(self, tmp_path):
        path = str(tmp_path / "t.wal")
        wal = WriteAheadLog(path)
        wal.append_page(0, page(b"a"))
        wal.append_commit()
        wal.close()
        with open(path, "r+b") as handle:
            data = bytearray(handle.read())
            data[40] ^= 0xFF  # inside the first frame's payload
            handle.seek(0)
            handle.write(data)
        pages, _, report = WriteAheadLog(path).scan()
        assert pages == {}
        assert not report.replayed
        assert report.torn_bytes > 0

    def test_later_uncommitted_transaction_dropped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "t.wal"))
        wal.append_page(0, page(b"a"))
        wal.append_commit()
        wal.append_page(0, page(b"z"))  # never committed
        wal.close()
        pages, _, report = WriteAheadLog(wal.path).scan()
        assert pages == {0: page(b"a")}
        assert report.uncommitted_frames == 1


class TestPagerWal:
    def test_committed_writes_survive_a_crash(self, db_path):
        pager = Pager(db_path)
        no = pager.allocate()
        pager.write_page(no, page(b"a"))
        pager.commit()
        # simulate a crash: abandon without close/checkpoint
        again = Pager(db_path)
        assert again.recovery_report.replayed
        assert again.read_page(no) == page(b"a")
        again.close()

    def test_uncommitted_writes_roll_back(self, db_path):
        pager = Pager(db_path)
        no = pager.allocate()
        pager.write_page(no, page(b"a"))
        pager.checkpoint()
        pager.write_page(no, page(b"b"))  # never committed
        again = Pager(db_path)
        assert not again.recovery_report.replayed
        assert again.read_page(no) == page(b"a")
        again.close()

    def test_checkpoint_truncates_the_log(self, db_path):
        pager = Pager(db_path)
        no = pager.allocate()
        pager.write_page(no, page(b"a"))
        pager.checkpoint()
        assert os.path.getsize(db_path + ".wal") == 0
        assert os.path.getsize(db_path) == PAGE_SIZE
        pager.close()

    def test_sidecar_staged_until_checkpoint(self, db_path):
        pager = Pager(db_path)
        pager.write_sidecar(".meta.json", b'{"v": 1}')
        assert not os.path.exists(db_path + ".meta.json")
        pager.checkpoint()
        with open(db_path + ".meta.json", "rb") as handle:
            assert handle.read() == b'{"v": 1}'
        pager.close()

    def test_close_checkpoints(self, db_path):
        with Pager(db_path) as pager:
            no = pager.allocate()
            pager.write_page(no, page(b"q"))
        with Pager(db_path, durability="none") as raw:
            assert raw.read_page(no) == page(b"q")

    def test_recovery_is_idempotent(self, db_path):
        pager = Pager(db_path)
        pager.allocate()
        pager.write_page(0, page(b"a"))
        pager.commit()
        first = Pager(db_path)
        assert first.recovery_report.replayed
        second = Pager(db_path)
        assert not second.recovery_report.replayed  # already applied
        assert second.read_page(0) == page(b"a")
        second.close()

    def test_stale_tmp_files_removed_on_open(self, db_path):
        Pager(db_path).close()
        stale = db_path + ".meta.json.tmp"
        with open(stale, "w") as handle:
            handle.write("{")
        pager = Pager(db_path)
        assert not os.path.exists(stale)
        assert stale in pager.recovery_report.stale_tmp_files
        pager.close()

    def test_reads_see_overlay_before_checkpoint(self, db_path):
        pager = Pager(db_path)
        pool = BufferPool(pager, capacity=2)
        no = pool.allocate()
        pool.put(no, page(b"x"))
        pool.reset()
        assert pool.get(no) == page(b"x")  # served from the WAL overlay
        pager.close()


class TestPagerCrashMatrix:
    """Crash at every point of a full two-version save; reopen; assert
    the pre- or post-save state — pages and sidecar always in step."""

    PAGES = 3

    def save_version(self, pager, fill, version):
        for no in range(self.PAGES):
            pager.write_page(no, page(fill))
        pager.write_sidecar(".meta.json", json.dumps({"v": version}).encode())
        pager.checkpoint()

    def build_v1(self, db_path):
        pager = Pager(db_path)
        for _ in range(self.PAGES):
            pager.allocate()
        self.save_version(pager, b"a", 1)
        return pager

    def state_of(self, db_path):
        with open(db_path + ".meta.json", encoding="utf-8") as handle:
            version = json.load(handle)["v"]
        with Pager(db_path, durability="none") as raw:
            images = {raw.read_page(no)[:1] for no in range(self.PAGES)}
        return version, images

    def test_every_crash_point_leaves_v1_or_v2(self, tmp_path):
        crash_points = get_crash_points()
        with crash_points.recording() as fired:
            pager = self.build_v1(str(tmp_path / "probe.db"))
            fired.clear()  # enumerate only the v2 save
            self.save_version(pager, b"b", 2)
            pager.close()
        matrix = []
        counts = {}
        for name in fired:
            counts[name] = counts.get(name, 0) + 1
            matrix.append((name, counts[name]))
        assert matrix, "no crash points fired during the save"
        for index, (point, occurrence) in enumerate(matrix):
            db_path = str(tmp_path / f"m{index}.db")
            pager = self.build_v1(db_path)
            with pytest.raises(InjectedCrash):
                with crash_points.crash_at(point, occurrence):
                    self.save_version(pager, b"b", 2)
            recovered = Pager(db_path)  # replay/discard, then close
            recovered.close()
            version, images = self.state_of(db_path)
            expected = {1: {b"a"}, 2: {b"b"}}[version]
            assert images == expected, (
                f"mixed page/sidecar state after crash at {point}#{occurrence}: "
                f"sidecar v{version}, pages {images}"
            )
            assert os.path.getsize(db_path + ".wal") == 0
            assert not any(
                name.endswith(".tmp") for name in os.listdir(tmp_path)
            )


class TestConcurrentCrashMatrix:
    """N writer threads committing tagged transactions while a crash
    point is armed with process-death semantics (``crash_from`` kills
    every thread that crosses the point from the N-th firing on).  On
    reopen the durable state must be prefix-consistent: each writer's
    committed transactions form a prefix of its sequence, every
    acknowledged commit is durable, and no transaction is half-applied.
    """

    WRITERS = 4
    TXNS_PER_WRITER = 3
    PAGES_PER_TXN = 2

    MATRIX = [
        ("wal.commit.begin", 2),
        ("wal.commit.begin", 5),
        ("wal.frame.torn", 3),
        ("wal.frame.torn", 9),
        ("wal.frame.appended", 4),
        ("wal.commit.synced", 2),
    ]

    def txn_id(self, writer, step):
        return writer * self.TXNS_PER_WRITER + step + 1

    def txn_pages(self, writer, step):
        base = (self.txn_id(writer, step) - 1) * self.PAGES_PER_TXN
        return range(base, base + self.PAGES_PER_TXN)

    def fill(self, writer, step):
        return bytes([0x10 + self.txn_id(writer, step)])

    @pytest.mark.parametrize("point,occurrence", MATRIX)
    def test_reopen_state_is_prefix_consistent(
        self, tmp_path, point, occurrence
    ):
        import threading

        db_path = str(tmp_path / "conc.db")
        pager = Pager(db_path, group_commit=True, group_window=0.002)
        total = self.WRITERS * self.TXNS_PER_WRITER * self.PAGES_PER_TXN
        for _ in range(total):
            pager.allocate()
        pager.commit()
        pager.checkpoint()  # baseline: all pages zeroed, empty log

        acknowledged = []
        ack_lock = threading.Lock()
        failures = []

        def writer(writer_id):
            try:
                for step in range(self.TXNS_PER_WRITER):
                    txn = self.txn_id(writer_id, step)
                    pager.set_wal_txn(txn)
                    for no in self.txn_pages(writer_id, step):
                        pager.write_page(no, page(self.fill(writer_id, step)))
                    pager.commit()
                    pager.clear_wal_txn()
                    with ack_lock:
                        acknowledged.append((writer_id, step))
            except InjectedCrash:
                return  # this thread's "process" died here
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(self.WRITERS)
        ]
        with get_crash_points().crash_from(point, occurrence):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert not failures, failures
        assert not any(thread.is_alive() for thread in threads)

        # crash: abandon the pager without close/checkpoint and reopen
        recovered = Pager(db_path)
        durable = set()
        for writer_id in range(self.WRITERS):
            for step in range(self.TXNS_PER_WRITER):
                images = {
                    recovered.read_page(no)[:1]
                    for no in self.txn_pages(writer_id, step)
                }
                expected = self.fill(writer_id, step)
                assert images in ({b"\x00"}, {expected}), (
                    f"half-applied txn writer={writer_id} step={step}: "
                    f"{images}"
                )
                if images == {expected}:
                    durable.add((writer_id, step))
        recovered.close()

        # every acknowledged commit survived the crash
        missing = set(acknowledged) - durable
        assert not missing, f"acknowledged but lost: {sorted(missing)}"
        # each writer commits sequentially, so its durable transactions
        # must form a prefix of its sequence
        for writer_id in range(self.WRITERS):
            steps = sorted(s for w, s in durable if w == writer_id)
            assert steps == list(range(len(steps))), (
                f"non-prefix durable state for writer {writer_id}: {steps}"
            )


class TestDurabilitySatellites:
    def test_sync_fsyncs_file_backed_pager(self, db_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        pager = Pager(db_path, durability="none")
        pager.allocate()
        synced.clear()
        pager.sync()
        assert synced, "sync() must fsync a file-backed pager"
        synced.clear()
        pager.close()
        assert synced, "close() must fsync a file-backed pager"

    def test_wal_sync_commits_durably(self, db_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd) or real_fsync(fd))
        pager = Pager(db_path)
        pager.allocate()
        synced.clear()
        pager.sync()
        assert synced, "sync() in WAL mode must fsync the log"
        pager.close()

    def test_memory_pager_sync_and_close_are_safe(self):
        pager = Pager()
        pager.allocate()
        pager.sync()  # BytesIO has no fileno: must not raise
        pager.close()

    def test_truncate_counts_a_physical_write(self):
        from repro.obs.metrics import get_registry

        pager = Pager()
        pager.allocate()
        global_writes = get_registry().counter("pager.writes")
        before_stats = pager.io_stats()
        before_global = global_writes.value
        pager.truncate()
        assert pager.io_stats().delta(before_stats).writes == 1
        assert global_writes.value == before_global + 1

    def test_unknown_durability_mode_rejected(self, db_path):
        with pytest.raises(StorageError):
            Pager(db_path, durability="paranoid")

    def test_memory_pager_forces_durability_none(self):
        assert Pager(None).durability == "none"

    def test_database_exposes_durability(self, db_path):
        from repro.rdb import Database

        assert Database().durability == "none"
        with Database(db_path) as db:
            assert db.durability == "wal"
        with Database(db_path, durability="none") as db:
            assert db.durability == "none"


class TestBlobSnapshot:
    def test_snapshot_restore_roundtrip(self):
        pool = BufferPool(Pager(), capacity=8)
        blobs = BlobStore(pool)
        first = blobs.put(b"alpha" * 100)
        second = blobs.put(b"beta")
        blobs.delete(first)
        snap = blobs.snapshot()

        clone = BlobStore(pool)
        clone.restore(snap)
        assert clone.get(second) == b"beta"
        assert first not in clone
        assert clone.put(b"gamma") > second  # next_id restored

    def test_snapshot_is_json_ready(self):
        pool = BufferPool(Pager(), capacity=8)
        blobs = BlobStore(pool)
        blobs.put(b"payload")
        restored = json.loads(json.dumps(blobs.snapshot()))
        clone = BlobStore(pool)
        clone.restore(restored)
        assert clone.get(1) == b"payload"

    def test_malformed_snapshot_rejected(self):
        blobs = BlobStore(BufferPool(Pager(), capacity=8))
        with pytest.raises(StorageError):
            blobs.restore({"entries": [{"id": 1}]})
