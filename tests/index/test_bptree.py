"""Tests for the B+ tree."""

import pytest

from repro.errors import IndexError_
from repro.index.bptree import BPlusTree


def test_insert_search():
    tree = BPlusTree(order=4)
    tree.insert((5,), "a")
    assert tree.search((5,)) == ["a"]


def test_missing_key_empty():
    assert BPlusTree().search((1,)) == []


def test_duplicates_accumulate():
    tree = BPlusTree(order=4)
    tree.insert((1,), "a")
    tree.insert((1,), "b")
    assert tree.search((1,)) == ["a", "b"]
    assert len(tree) == 2


def test_many_inserts_split_and_stay_searchable():
    tree = BPlusTree(order=4)
    for i in range(1000):
        tree.insert((i,), i * 2)
    assert tree.height() > 2
    for i in range(0, 1000, 37):
        assert tree.search((i,)) == [i * 2]
    tree.check_invariants()


def test_reverse_insertion_order():
    tree = BPlusTree(order=4)
    for i in reversed(range(500)):
        tree.insert((i,), i)
    assert [k[0] for k in tree.keys()] == list(range(500))
    tree.check_invariants()


def test_range_scan_inclusive():
    tree = BPlusTree(order=8)
    for i in range(100):
        tree.insert((i,), i)
    got = [k[0] for k, _ in tree.range((10,), (20,))]
    assert got == list(range(10, 21))


def test_range_scan_exclusive_bounds():
    tree = BPlusTree(order=8)
    for i in range(30):
        tree.insert((i,), i)
    got = [
        k[0]
        for k, _ in tree.range((10,), (20,), low_inclusive=False, high_inclusive=False)
    ]
    assert got == list(range(11, 20))


def test_range_unbounded():
    tree = BPlusTree(order=8)
    for i in range(50):
        tree.insert((i,), i)
    assert len(list(tree.range())) == 50
    assert [k[0] for k, _ in tree.range(high=(5,))] == list(range(6))
    assert [k[0] for k, _ in tree.range(low=(45,))] == list(range(45, 50))


def test_composite_keys_sort_lexicographically():
    tree = BPlusTree(order=4)
    tree.insert((1, "b"), "x")
    tree.insert((1, "a"), "y")
    tree.insert((2, "a"), "z")
    assert [k for k, _ in tree.items()] == [(1, "a"), (1, "b"), (2, "a")]


def test_prefix_scan():
    tree = BPlusTree(order=4)
    for seg in (1, 2):
        for ident in range(5):
            tree.insert((seg, ident), seg * 100 + ident)
    got = [payload for _, payload in tree.prefix((1,))]
    assert got == [100, 101, 102, 103, 104]


def test_delete_specific_payload():
    tree = BPlusTree(order=4)
    tree.insert((1,), "a")
    tree.insert((1,), "b")
    assert tree.delete((1,), "a")
    assert tree.search((1,)) == ["b"]
    assert len(tree) == 1


def test_delete_whole_key():
    tree = BPlusTree(order=4)
    tree.insert((1,), "a")
    tree.insert((1,), "b")
    assert tree.delete((1,))
    assert tree.search((1,)) == []
    assert len(tree) == 0


def test_delete_absent_returns_false():
    tree = BPlusTree(order=4)
    tree.insert((1,), "a")
    assert not tree.delete((2,))
    assert not tree.delete((1,), "zz")


def test_mass_delete_keeps_invariants():
    tree = BPlusTree(order=4)
    for i in range(300):
        tree.insert((i,), i)
    for i in range(0, 300, 2):
        assert tree.delete((i,))
    tree.check_invariants()
    assert [k[0] for k in tree.keys()] == list(range(1, 300, 2))


def test_delete_everything_then_reuse():
    tree = BPlusTree(order=4)
    for i in range(100):
        tree.insert((i,), i)
    for i in range(100):
        assert tree.delete((i,))
    assert len(tree) == 0
    tree.insert((7,), "back")
    assert tree.search((7,)) == ["back"]
    tree.check_invariants()


def test_non_tuple_key_raises():
    with pytest.raises(IndexError_):
        BPlusTree().insert(5, "x")  # type: ignore[arg-type]


def test_tiny_order_rejected():
    with pytest.raises(IndexError_):
        BPlusTree(order=2)


def test_approx_bytes_grows():
    tree = BPlusTree(order=16)
    empty = tree.approx_bytes()
    for i in range(1000):
        tree.insert((i,), i)
    assert tree.approx_bytes() > empty


def test_string_keys():
    tree = BPlusTree(order=4)
    names = ["Bob", "Alice", "Carol", "Dave"]
    for n in names:
        tree.insert((n,), n.lower())
    assert [k[0] for k in tree.keys()] == sorted(names)
