"""Tests for the native XML database baseline."""

import pytest

from repro.errors import XmlError
from repro.nativexml import NativeXmlDatabase, NativeXmlStore
from repro.xmlkit import parse_xml

from tests.xquery.conftest import DEPTS_XML, EMPLOYEES_XML


@pytest.fixture
def db():
    database = NativeXmlDatabase()
    database.store_text("employees.xml", EMPLOYEES_XML)
    database.store_text("depts.xml", DEPTS_XML)
    database.set_date("1997-06-15")
    return database


class TestStore:
    def test_roundtrip(self):
        store = NativeXmlStore()
        original = parse_xml("<a><b>text</b></a>")
        store.put_document("d.xml", original)
        store.reset_caches()
        loaded = store.load_document("d.xml")
        assert loaded.deep_equal(original)

    def test_multi_block_document(self):
        store = NativeXmlStore()
        big = parse_xml(
            "<r>" + "".join(f"<i>{n}</i>" for n in range(5000)) + "</r>"
        )
        store.put_document("big.xml", big)
        store.reset_caches()
        loaded = store.load_document("big.xml")
        assert len(loaded.elements("i")) == 5000

    def test_compression_shrinks_storage(self):
        compressed = NativeXmlStore(compress=True)
        plain = NativeXmlStore(compress=False)
        doc = parse_xml(
            "<r>" + "<x tstart='1995-01-01' tend='9999-12-31'>v</x>" * 3000 + "</r>"
        )
        compressed.put_document("d.xml", doc)
        plain.put_document("d.xml", doc.copy())
        assert compressed.storage_bytes() < plain.storage_bytes() / 3

    def test_replace_document_frees_old_blobs(self):
        store = NativeXmlStore()
        store.put_document("d.xml", parse_xml("<a>" + "x" * 50000 + "</a>"))
        first = len(store.blobs)
        store.put_document("d.xml", parse_xml("<a>tiny</a>"))
        assert len(store.blobs) <= first

    def test_remove_document(self):
        store = NativeXmlStore()
        store.put_document("d.xml", parse_xml("<a/>"))
        store.remove_document("d.xml")
        assert "d.xml" not in store
        with pytest.raises(XmlError):
            store.load_document("d.xml")

    def test_missing_document_raises(self):
        with pytest.raises(XmlError):
            NativeXmlStore().load_document("nope.xml")

    def test_documents_listing(self):
        store = NativeXmlStore()
        store.put_document("b.xml", parse_xml("<b/>"))
        store.put_document("a.xml", parse_xml("<a/>"))
        assert store.documents() == ["a.xml", "b.xml"]

    def test_cold_load_costs_physical_reads(self):
        store = NativeXmlStore()
        store.put_document("d.xml", parse_xml("<a>" + "y" * 40000 + "</a>"))
        store.reset_caches()
        before = store.pager.io_stats()
        store.load_document("d.xml")
        assert store.pager.io_stats().delta(before).reads > 0


class TestEngine:
    def test_simple_query(self, db):
        out = db.xquery('doc("employees.xml")/employees/employee/name')
        assert [e.text() for e in out] == ["Bob", "Ann", "Carl"]

    def test_temporal_query(self, db):
        out = db.xquery(
            'for $m in doc("depts.xml")/depts/dept/mgrno'
            '[tstart(.)<=xs:date("1994-05-06") and tend(.)>=xs:date("1994-05-06")]'
            " return $m"
        )
        assert sorted(e.text() for e in out) == ["2501", "3402", "4748"]

    def test_cross_document_join(self, db):
        out = db.xquery(
            'for $e in doc("employees.xml")/employees/employee '
            'for $d in doc("depts.xml")/depts/dept '
            "where $e/deptno = $d/deptno return $e/name"
        )
        assert len(out) >= 2

    def test_update_document(self, db):
        def raise_salary(root):
            bob = [
                e
                for e in root.elements("employee")
                if e.first("name").text() == "Bob"
            ][0]
            bob.elements("salary")[-1].children[0].value = "77000"

        db.update_document("employees.xml", raise_salary)
        db.reset_caches()
        out = db.xquery(
            'doc("employees.xml")/employees/employee[name="Bob"]/salary'
        )
        assert [e.text() for e in out] == ["60000", "77000"]

    def test_current_date_in_queries(self, db):
        out = db.xquery(
            'tend(doc("employees.xml")/employees/employee[name="Ann"])'
        )
        assert str(out[0]) == "1997-06-15"

    def test_reset_caches_forces_reload(self, db):
        db.xquery('doc("employees.xml")/employees')
        db.reset_caches()
        before = db.store.pager.io_stats()
        db.xquery('doc("employees.xml")/employees')
        assert db.store.pager.io_stats().delta(before).reads > 0

    def test_register_function(self, db):
        db.register_function("fortytwo", lambda ctx: [42])
        assert db.xquery("fortytwo()") == [42]

    def test_storage_bytes_positive(self, db):
        assert db.storage_bytes() > 0
