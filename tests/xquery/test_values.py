"""Tests for the XQuery data model helpers (values module)."""

import pytest

from repro.errors import XQueryTypeError
from repro.xmlkit.dom import Element, Text
from repro.xquery.values import (
    DateValue,
    as_sequence,
    atomize,
    compare_atoms,
    effective_boolean,
    numeric_value,
    string_value,
)


def element_with_text(value):
    e = Element("x")
    e.append(Text(value))
    return e


class TestSequences:
    def test_none_is_empty(self):
        assert as_sequence(None) == []

    def test_list_passthrough(self):
        assert as_sequence([1, 2]) == [1, 2]

    def test_scalar_wrapped(self):
        assert as_sequence(5) == [5]


class TestAtomization:
    def test_element_atomizes_to_text(self):
        assert atomize([element_with_text("70000")]) == ["70000"]

    def test_text_node(self):
        assert atomize([Text("abc")]) == ["abc"]

    def test_scalars_unchanged(self):
        assert atomize([1, "a", True]) == [1, "a", True]


class TestEffectiveBoolean:
    def test_empty_false(self):
        assert effective_boolean([]) is False

    def test_node_true(self):
        assert effective_boolean([Element("x")]) is True

    def test_bool_passthrough(self):
        assert effective_boolean([False]) is False
        assert effective_boolean([True]) is True

    def test_zero_false(self):
        assert effective_boolean([0]) is False
        assert effective_boolean([0.0]) is False

    def test_nonzero_true(self):
        assert effective_boolean([7]) is True

    def test_empty_string_false(self):
        assert effective_boolean([""]) is False
        assert effective_boolean(["x"]) is True

    def test_date_true(self):
        assert effective_boolean([DateValue(0)]) is True

    def test_multi_atomic_raises(self):
        with pytest.raises(XQueryTypeError):
            effective_boolean([1, 2])

    def test_multi_node_true(self):
        assert effective_boolean([Element("a"), Element("b")]) is True


class TestStringNumeric:
    def test_string_of_float_integral(self):
        assert string_value(3.0) == "3"

    def test_string_of_bool(self):
        assert string_value(True) == "true"
        assert string_value(False) == "false"

    def test_string_of_date(self):
        assert string_value(DateValue(0)) == "1970-01-01"

    def test_numeric_from_string(self):
        assert numeric_value("42") == 42.0

    def test_numeric_from_element(self):
        assert numeric_value(element_with_text("7")) == 7.0

    def test_numeric_from_date(self):
        assert numeric_value(DateValue(10)) == 10.0

    def test_numeric_bad_string_raises(self):
        with pytest.raises(XQueryTypeError):
            numeric_value("Bob")

    def test_numeric_bool_raises(self):
        with pytest.raises(XQueryTypeError):
            numeric_value(True)


class TestCompareAtoms:
    def test_numeric_coercion(self):
        assert compare_atoms("=", "10", 10)
        assert compare_atoms("<", 2, "10")

    def test_string_comparison(self):
        assert compare_atoms("<", "abc", "abd")

    def test_date_with_string(self):
        assert compare_atoms("=", DateValue(0), "1970-01-01")
        assert compare_atoms("<", DateValue(0), "1970-01-02")

    def test_date_with_bad_string_raises(self):
        with pytest.raises(XQueryTypeError):
            compare_atoms("=", DateValue(0), "Bob")

    def test_bool_comparison(self):
        assert compare_atoms("=", True, True)
        assert compare_atoms("!=", True, False)

    def test_all_operators(self):
        assert compare_atoms("<=", 1, 1)
        assert compare_atoms(">=", 1, 1)
        assert compare_atoms(">", 2, 1)
        assert compare_atoms("!=", 1, 2)

    def test_unknown_operator_raises(self):
        with pytest.raises(XQueryTypeError):
            compare_atoms("~", 1, 1)

    def test_dates_sort(self):
        assert DateValue(1) < DateValue(2)
        assert str(DateValue(1)) == "1970-01-02"

    def test_non_numeric_string_vs_number_falls_back(self):
        # '=' between a word and a number: not equal, no crash
        assert not compare_atoms("=", "Bob", 10)
