"""Tests for the XQuery evaluator on general expressions."""

import pytest

from repro.errors import XQueryError, XQueryTypeError
from repro.xmlkit.dom import Element
from repro.xquery import evaluate, parse_xquery
from repro.xquery.values import DateValue


def run(query, ctx):
    return evaluate(parse_xquery(query), ctx)


class TestBasics:
    def test_literal(self, ctx):
        assert run("42", ctx) == [42]

    def test_sequence_flattens(self, ctx):
        assert run("(1, (2, 3))", ctx) == [1, 2, 3]

    def test_arithmetic(self, ctx):
        assert run("1 + 2 * 3", ctx) == [7]

    def test_div(self, ctx):
        assert run("7 div 2", ctx) == [3.5]

    def test_mod(self, ctx):
        assert run("7 mod 2", ctx) == [1]

    def test_division_by_zero(self, ctx):
        with pytest.raises(XQueryTypeError):
            run("1 div 0", ctx)

    def test_unary_minus(self, ctx):
        assert run("- 5", ctx) == [-5]

    def test_empty_arithmetic_propagates(self, ctx):
        assert run("() + 1", ctx) == []

    def test_unbound_variable(self, ctx):
        with pytest.raises(XQueryError):
            run("$nope", ctx)

    def test_if(self, ctx):
        assert run("if (1 = 1) then 'y' else 'n'", ctx) == ["y"]
        assert run("if (1 = 2) then 'y' else 'n'", ctx) == ["n"]


class TestComparisons:
    def test_numeric(self, ctx):
        assert run("2 < 10", ctx) == [True]

    def test_string(self, ctx):
        assert run("'abc' = 'abc'", ctx) == [True]

    def test_string_number_coercion(self, ctx):
        assert run("'10' = 10", ctx) == [True]

    def test_general_comparison_existential(self, ctx):
        assert run("(1, 2, 3) = 2", ctx) == [True]
        assert run("(1, 2, 3) = 9", ctx) == [False]

    def test_date_comparison(self, ctx):
        assert run(
            'xs:date("1994-05-06") <= xs:date("1995-05-06")', ctx
        ) == [True]

    def test_date_string_mixed(self, ctx):
        assert run('xs:date("1994-05-06") = "1994-05-06"', ctx) == [True]

    def test_date_arith(self, ctx):
        assert run('xs:date("1970-01-11") - xs:date("1970-01-01")', ctx) == [10]

    def test_and_or(self, ctx):
        assert run("1 = 1 and 2 = 2", ctx) == [True]
        assert run("1 = 2 or 2 = 2", ctx) == [True]


class TestPathsOnDocuments:
    def test_doc_path(self, ctx):
        names = run('doc("employees.xml")/employees/employee/name', ctx)
        assert [n.text() for n in names] == ["Bob", "Ann", "Carl"]

    def test_predicate_filters(self, ctx):
        out = run('doc("employees.xml")/employees/employee[name="Bob"]/salary', ctx)
        assert [e.text() for e in out] == ["60000", "70000"]

    def test_positional_predicate(self, ctx):
        out = run('doc("employees.xml")/employees/employee[2]/name', ctx)
        assert [e.text() for e in out] == ["Ann"]

    def test_attribute_access(self, ctx):
        out = run('doc("employees.xml")/employees/employee[1]/@tstart', ctx)
        assert out == ["1995-01-01"]

    def test_descendant(self, ctx):
        out = run('doc("depts.xml")//mgrno', ctx)
        assert len(out) == 4

    def test_text_step(self, ctx):
        out = run('doc("employees.xml")/employees/employee[1]/name/text()', ctx)
        assert out == ["Bob"]

    def test_wildcard(self, ctx):
        out = run('doc("depts.xml")/depts/dept[1]/*', ctx)
        assert [e.name for e in out] == ["deptno", "deptname", "mgrno"]

    def test_missing_document(self, ctx):
        with pytest.raises(XQueryError):
            run('doc("missing.xml")/a', ctx)

    def test_comparison_inside_predicate(self, ctx):
        out = run(
            'doc("employees.xml")/employees/employee[salary > 60000]/name', ctx
        )
        assert sorted(e.text() for e in out) == ["Ann", "Bob"]


class TestFlwor:
    def test_for_iterates(self, ctx):
        out = run(
            'for $e in doc("employees.xml")/employees/employee return $e/name',
            ctx,
        )
        assert [e.text() for e in out] == ["Bob", "Ann", "Carl"]

    def test_let_binds_sequence(self, ctx):
        out = run(
            'let $s := doc("employees.xml")/employees/employee return count($s)',
            ctx,
        )
        assert out == [3]

    def test_where_filters(self, ctx):
        out = run(
            'for $e in doc("employees.xml")/employees/employee '
            'where $e/name = "Ann" return $e/id',
            ctx,
        )
        assert [e.text() for e in out] == ["1002"]

    def test_nested_for_is_product(self, ctx):
        out = run("for $a in (1, 2) for $b in (10, 20) return $a + $b", ctx)
        assert out == [11, 21, 12, 22]

    def test_order_by(self, ctx):
        out = run(
            'for $e in doc("employees.xml")/employees/employee '
            "order by string($e/name) return $e/name",
            ctx,
        )
        assert [e.text() for e in out] == ["Ann", "Bob", "Carl"]

    def test_order_by_descending(self, ctx):
        out = run("for $x in (1, 3, 2) order by $x descending return $x", ctx)
        assert out == [3, 2, 1]

    def test_position_variable(self, ctx):
        out = run("for $x at $i in ('a', 'b') return $i", ctx)
        assert out == [1, 2]


class TestQuantified:
    def test_every_true(self, ctx):
        assert run("every $x in (1, 2) satisfies $x < 5", ctx) == [True]

    def test_every_false(self, ctx):
        assert run("every $x in (1, 9) satisfies $x < 5", ctx) == [False]

    def test_some(self, ctx):
        assert run("some $x in (1, 9) satisfies $x > 5", ctx) == [True]

    def test_every_over_empty_is_true(self, ctx):
        assert run("every $x in () satisfies $x = 99", ctx) == [True]

    def test_some_over_empty_is_false(self, ctx):
        assert run("some $x in () satisfies $x = $x", ctx) == [False]


class TestConstructors:
    def test_computed_element(self, ctx):
        out = run("element greeting { 'hi' }", ctx)
        assert isinstance(out[0], Element)
        assert out[0].name == "greeting"
        assert out[0].text() == "hi"

    def test_computed_element_copies_nodes(self, ctx):
        out = run(
            'element wrap { doc("employees.xml")/employees/employee[1]/name }',
            ctx,
        )
        assert out[0].first("name").text() == "Bob"

    def test_direct_element_with_holes(self, ctx):
        out = run('<x a="{1 + 1}">{2 + 3}</x>', ctx)
        assert out[0].get("a") == "2"
        assert out[0].text() == "5"

    def test_direct_nested(self, ctx):
        out = run("<a><b>{'t'}</b></a>", ctx)
        assert out[0].first("b").text() == "t"

    def test_atomic_values_space_joined(self, ctx):
        out = run("element s { (1, 2, 3) }", ctx)
        assert out[0].text() == "1 2 3"


class TestFunctions:
    def test_count_empty_not(self, ctx):
        assert run("count(())", ctx) == [0]
        assert run("empty(())", ctx) == [True]
        assert run("not(1 = 1)", ctx) == [False]

    def test_max_min_sum_avg(self, ctx):
        assert run("max((1, 5, 3))", ctx) == [5]
        assert run("min((1, 5, 3))", ctx) == [1]
        assert run("sum((1, 2, 3))", ctx) == [6]
        assert run("avg((2, 4))", ctx) == [3]

    def test_max_over_elements_numeric(self, ctx):
        out = run('max(doc("employees.xml")/employees/employee/salary)', ctx)
        assert out == [72000]

    def test_string_functions(self, ctx):
        assert run("concat('a', 'b', 'c')", ctx) == ["abc"]
        assert run("contains('hello', 'ell')", ctx) == [True]
        assert run("starts-with('hello', 'he')", ctx) == [True]
        assert run("string-length('abc')", ctx) == [3]
        assert run("substring('hello', 2, 3)", ctx) == ["ell"]

    def test_distinct_values(self, ctx):
        assert run("distinct-values((1, 2, 1, 3))", ctx) == [1, 2, 3]

    def test_current_date(self, ctx):
        out = run("current-date()", ctx)
        assert isinstance(out[0], DateValue)

    def test_string_of_element(self, ctx):
        out = run('string(doc("employees.xml")/employees/employee[1]/name)', ctx)
        assert out == ["Bob"]

    def test_name_function(self, ctx):
        out = run('name(doc("depts.xml")/depts/dept[1])', ctx)
        assert out == ["dept"]

    def test_unknown_function(self, ctx):
        with pytest.raises(XQueryError):
            run("frobnicate(1)", ctx)


class TestFocusFunctions:
    def test_position_in_predicate(self, ctx):
        out = run(
            'doc("employees.xml")/employees/employee[position() = 2]/name',
            ctx,
        )
        assert [e.text() for e in out] == ["Ann"]

    def test_last_in_predicate(self, ctx):
        out = run(
            'doc("employees.xml")/employees/employee[position() = last()]/name',
            ctx,
        )
        assert [e.text() for e in out] == ["Carl"]

    def test_position_range(self, ctx):
        out = run(
            'doc("employees.xml")/employees/employee[position() >= 2]/name',
            ctx,
        )
        assert [e.text() for e in out] == ["Ann", "Carl"]

    def test_position_outside_predicate_raises(self, ctx):
        with pytest.raises(XQueryError):
            run("position()", ctx)

    def test_last_outside_predicate_raises(self, ctx):
        with pytest.raises(XQueryError):
            run("last()", ctx)
