"""Shared fixtures: the paper's example H-documents (Figures 3 and 4).

``employees.xml`` is the temporally grouped history of Table 1 and
``depts.xml`` of Table 2.
"""

import pytest

from repro.util.timeutil import parse_date
from repro.xmlkit import parse_xml
from repro.xquery import make_context

EMPLOYEES_XML = """
<employees tstart="1992-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="1996-12-31">
    <id tstart="1995-01-01" tend="1996-12-31">1001</id>
    <name tstart="1995-01-01" tend="1996-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="1996-12-31">70000</salary>
    <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
    <title tstart="1995-10-01" tend="1996-01-31">Sr Engineer</title>
    <title tstart="1996-02-01" tend="1996-12-31">TechLeader</title>
    <deptno tstart="1995-01-01" tend="1995-09-30">d01</deptno>
    <deptno tstart="1995-10-01" tend="1996-12-31">d02</deptno>
  </employee>
  <employee tstart="1993-03-01" tend="9999-12-31">
    <id tstart="1993-03-01" tend="9999-12-31">1002</id>
    <name tstart="1993-03-01" tend="9999-12-31">Ann</name>
    <salary tstart="1993-03-01" tend="1995-12-31">65000</salary>
    <salary tstart="1996-01-01" tend="9999-12-31">72000</salary>
    <title tstart="1993-03-01" tend="9999-12-31">Sr Engineer</title>
    <deptno tstart="1993-03-01" tend="9999-12-31">d001</deptno>
  </employee>
  <employee tstart="1994-02-01" tend="9999-12-31">
    <id tstart="1994-02-01" tend="9999-12-31">1003</id>
    <name tstart="1994-02-01" tend="9999-12-31">Carl</name>
    <salary tstart="1994-02-01" tend="9999-12-31">55000</salary>
    <title tstart="1994-02-01" tend="9999-12-31">Engineer</title>
    <deptno tstart="1994-02-01" tend="9999-12-31">d03</deptno>
  </employee>
</employees>
"""

DEPTS_XML = """
<depts tstart="1992-01-01" tend="9999-12-31">
  <dept tstart="1994-01-01" tend="1998-12-31">
    <deptno tstart="1994-01-01" tend="1998-12-31">d01</deptno>
    <deptname tstart="1994-01-01" tend="1998-12-31">QA</deptname>
    <mgrno tstart="1994-01-01" tend="1998-12-31">2501</mgrno>
  </dept>
  <dept tstart="1992-01-01" tend="1998-12-31">
    <deptno tstart="1992-01-01" tend="1998-12-31">d02</deptno>
    <deptname tstart="1992-01-01" tend="1998-12-31">RD</deptname>
    <mgrno tstart="1992-01-01" tend="1996-12-31">3402</mgrno>
    <mgrno tstart="1997-01-01" tend="1998-12-31">1009</mgrno>
  </dept>
  <dept tstart="1993-01-01" tend="1997-12-31">
    <deptno tstart="1993-01-01" tend="1997-12-31">d03</deptno>
    <deptname tstart="1993-01-01" tend="1997-12-31">Sales</deptname>
    <mgrno tstart="1993-01-01" tend="1997-12-31">4748</mgrno>
  </dept>
</depts>
"""

TODAY = parse_date("1997-06-15")


@pytest.fixture(scope="module")
def documents():
    return {
        "employees.xml": parse_xml(EMPLOYEES_XML),
        "depts.xml": parse_xml(DEPTS_XML),
        "emp.xml": parse_xml(EMPLOYEES_XML),
    }


@pytest.fixture
def ctx(documents):
    return make_context(documents, TODAY)
