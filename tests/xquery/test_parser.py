"""Tests for the XQuery parser."""

import pytest

from repro.errors import XQuerySyntaxError
from repro.xquery import parse_xquery
from repro.xquery.ast import (
    BinaryOp,
    ComputedElement,
    DirectElement,
    Flwor,
    ForClause,
    FunctionCall,
    IfExpr,
    LetClause,
    Literal,
    OrderByClause,
    PathExpr,
    Quantified,
    SequenceExpr,
    VarRef,
    WhereClause,
)


class TestPrimaries:
    def test_string_literal(self):
        assert parse_xquery('"Bob"') == Literal("Bob")

    def test_string_single_quotes(self):
        assert parse_xquery("'Bob'") == Literal("Bob")

    def test_doubled_quote_escape(self):
        assert parse_xquery('"a""b"') == Literal('a"b')

    def test_integer(self):
        assert parse_xquery("42") == Literal(42)

    def test_decimal(self):
        assert parse_xquery("4.5") == Literal(4.5)

    def test_variable(self):
        assert parse_xquery("$e") == VarRef("e")

    def test_parenthesized(self):
        assert parse_xquery("(1)") == Literal(1)

    def test_empty_sequence(self):
        assert parse_xquery("()") == SequenceExpr(())

    def test_sequence(self):
        assert parse_xquery("1, 2") == SequenceExpr((Literal(1), Literal(2)))

    def test_comment_skipped(self):
        assert parse_xquery("(: note :) 7") == Literal(7)

    def test_nested_comment(self):
        assert parse_xquery("(: a (: b :) c :) 7") == Literal(7)


class TestOperators:
    def test_comparison(self):
        node = parse_xquery("1 <= 2")
        assert node == BinaryOp("<=", Literal(1), Literal(2))

    def test_and_or_precedence(self):
        node = parse_xquery("1 and 2 or 3")
        assert isinstance(node, BinaryOp) and node.op == "or"

    def test_arithmetic_precedence(self):
        node = parse_xquery("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_div(self):
        assert parse_xquery("4 div 2").op == "div"

    def test_names_can_contain_dash(self):
        node = parse_xquery("current-date()")
        assert node == FunctionCall("current-date", ())

    def test_subtraction_needs_spaces(self):
        node = parse_xquery("$a - 1")
        assert node.op == "-"


class TestPaths:
    def test_doc_rooted_path(self):
        node = parse_xquery('doc("employees.xml")/employees/employee')
        assert isinstance(node, PathExpr)
        assert isinstance(node.start, FunctionCall)
        assert [s.test for s in node.steps] == ["employees", "employee"]

    def test_predicate_in_step(self):
        node = parse_xquery('doc("e.xml")/employees/employee[name="Bob"]/title')
        employee_step = node.steps[1]
        assert len(employee_step.predicates) == 1

    def test_relative_path_from_var(self):
        node = parse_xquery("$e/name")
        assert node.start == VarRef("e")
        assert node.steps[0].test == "name"

    def test_descendant_axis(self):
        node = parse_xquery("$e//salary")
        assert node.steps[0].axis == "descendant"

    def test_attribute_step(self):
        node = parse_xquery("$e/@tstart")
        assert node.steps[0].test == "@tstart"

    def test_text_step(self):
        node = parse_xquery("$e/text()")
        assert node.steps[0].test == "text()"

    def test_wildcard_step(self):
        node = parse_xquery("$e/*")
        assert node.steps[0].test == "*"

    def test_context_relative_name(self):
        node = parse_xquery("name")
        assert isinstance(node, PathExpr)
        assert node.steps[0].test == "name"

    def test_predicate_with_function(self):
        node = parse_xquery('$d/mgrno[tstart(.) <= xs:date("1994-05-06")]')
        predicate = node.steps[0].predicates[0]
        assert isinstance(predicate, BinaryOp)

    def test_nested_predicates(self):
        node = parse_xquery('$e/title[.="Sr Engineer" and tend(.)=current-date()]')
        assert len(node.steps[0].predicates) == 1


class TestFlwor:
    def test_simple_for_return(self):
        node = parse_xquery("for $t in $s return $t")
        assert isinstance(node, Flwor)
        assert isinstance(node.clauses[0], ForClause)

    def test_multiple_for_vars(self):
        node = parse_xquery("for $a in $x, $b in $y return $a")
        assert len(node.clauses) == 2

    def test_let(self):
        node = parse_xquery("let $s := 5 return $s")
        assert isinstance(node.clauses[0], LetClause)

    def test_where(self):
        node = parse_xquery("for $e in $s where $e = 1 return $e")
        assert isinstance(node.clauses[1], WhereClause)

    def test_order_by(self):
        node = parse_xquery("for $e in $s order by $e descending return $e")
        order = node.clauses[1]
        assert isinstance(order, OrderByClause)
        assert order.specs[0].descending

    def test_interleaved_clauses(self):
        node = parse_xquery(
            "for $d in $x for $m in $d let $q := $m where $q return $q"
        )
        kinds = [type(c).__name__ for c in node.clauses]
        assert kinds == ["ForClause", "ForClause", "LetClause", "WhereClause"]

    def test_for_at_position(self):
        node = parse_xquery("for $e at $i in $s return $i")
        assert node.clauses[0].position_var == "i"


class TestQuantified:
    def test_every_satisfies(self):
        node = parse_xquery("every $d in $x satisfies $d = 1")
        assert isinstance(node, Quantified)
        assert node.kind == "every"

    def test_some_satisfies(self):
        node = parse_xquery("some $d in $x satisfies $d = 1")
        assert node.kind == "some"

    def test_nested_quantifiers(self):
        node = parse_xquery(
            "every $a in $x satisfies some $b in $y satisfies $a = $b"
        )
        assert isinstance(node.condition, Quantified)


class TestConstructors:
    def test_computed_element(self):
        node = parse_xquery("element title_history { $t }")
        assert node == ComputedElement("title_history", VarRef("t"))

    def test_computed_element_empty(self):
        node = parse_xquery("element x {}")
        assert node.content is None

    def test_nested_computed(self):
        node = parse_xquery("element a { element b { 1 } }")
        assert isinstance(node.content, ComputedElement)

    def test_direct_element(self):
        node = parse_xquery("<employee>{$e/id}</employee>")
        assert isinstance(node, DirectElement)
        assert node.name == "employee"
        assert len(node.content) == 1

    def test_direct_element_mixed(self):
        node = parse_xquery("<e>hi {$x} bye</e>")
        kinds = [type(p).__name__ for p in node.content]
        assert kinds == ["str", "PathExpr"] or kinds == ["str", "VarRef", "str"]

    def test_direct_element_attrs(self):
        node = parse_xquery('<e tstart="1995-01-01"/>')
        assert node.attrs[0].name == "tstart"
        assert node.attrs[0].parts == ("1995-01-01",)

    def test_direct_attr_with_expr(self):
        node = parse_xquery('<e when="{current-date()}"/>')
        assert isinstance(node.attrs[0].parts[0], FunctionCall)

    def test_nested_direct(self):
        node = parse_xquery("<a><b>{1}</b></a>")
        assert isinstance(node.content[0], DirectElement)

    def test_if_expr(self):
        node = parse_xquery("if (1) then 2 else 3")
        assert isinstance(node, IfExpr)


class TestPaperQueriesParse:
    """All eight Section-4 queries must parse."""

    def test_query1(self):
        parse_xquery(
            'element title_history { for $t in doc("employees.xml")/employees/'
            'employee[name="Bob"]/title return $t }'
        )

    def test_query2(self):
        parse_xquery(
            'for $m in doc("depts.xml")/depts/dept/mgrno'
            '[tstart(.)<=xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]'
            " return $m"
        )

    def test_query3(self):
        parse_xquery(
            'for $e in doc("employees.xml")/employees/employee[ toverlaps(.,'
            ' telement( xs:date("1994-05-06"), xs:date("1995-05-06") ) ) ]'
            " return $e/name"
        )

    def test_query4(self):
        parse_xquery(
            "element manages { for $d in doc(\"depts.xml\")/depts/dept"
            " for $m in $d/mgrno return element manage {$d/deptno, $m,"
            " element employees { for $e in doc(\"employees.xml\")/employees/employee"
            " where $e/deptno = $d/deptno and not(empty(overlapinterval($e, $m)))"
            " return ($e/name, overlapinterval($e,$m)) }}}"
        )

    def test_query5(self):
        parse_xquery(
            'let $s := document("emp.xml")/employees/employee/salary return tavg($s)'
        )

    def test_query6(self):
        parse_xquery(
            'for $e in doc("emp.xml")/employees/employee[name="Bob"]'
            " let $d := $e/dept let $t := $e/title"
            " let $overlaps := restructure($d, $t) return max($overlaps)"
        )

    def test_query7(self):
        parse_xquery(
            'for $e in doc("employees.xml")/employees/employee'
            ' let $m:= $e/title[.="Sr Engineer" and tend(.)=current-date()]'
            ' let $d:=$e/deptno[.="d001" and tcontains($m, .)]'
            " where not(empty($d)) and not(empty($m))"
            " return <employee>{$e/id, $e/name}</employee>"
        )

    def test_query8(self):
        parse_xquery(
            'for $e1 in doc("employees.xml")/employees/employee[name = "Bob"]'
            ' for $e2 in doc("employees.xml")/employees/employee[name != "Bob"]'
            " where (every $d1 in $e1/deptno satisfies some $d2 in $e2/deptno satisfies"
            " (string($d1)=string($d2) and tequals($d2,$d1))) and"
            " (every $d2 in $e2/deptno satisfies some $d1 in $e1/deptno satisfies"
            " (string($d2)=string($d1) and tequals($d1,$d2)))"
            " return <employee>{$e2/name}</employee>"
        )


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery('"abc')

    def test_trailing_garbage(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("1 1")

    def test_missing_return(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("for $x in $y")

    def test_bad_predicate(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("$e/name[")

    def test_mismatched_constructor(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("<a></b>")

    def test_unterminated_comment(self):
        with pytest.raises(XQuerySyntaxError):
            parse_xquery("(: oops")
