"""Tests for the temporal function library (paper Section 4.2)."""

import pytest

from repro.errors import XQueryTypeError
from repro.xmlkit.dom import Element
from repro.xquery import evaluate, parse_xquery
from repro.xquery.values import DateValue


def run(query, ctx):
    return evaluate(parse_xquery(query), ctx)


def first_emp(ctx, name="Bob"):
    return run(
        f'doc("employees.xml")/employees/employee[name="{name}"]', ctx
    )[0]


class TestAccessors:
    def test_tstart(self, ctx):
        out = run(
            'tstart(doc("employees.xml")/employees/employee[1])', ctx
        )
        assert out == [DateValue.__class__ and out[0]]
        assert str(out[0]) == "1995-01-01"

    def test_tend_plain(self, ctx):
        out = run('tend(doc("employees.xml")/employees/employee[1])', ctx)
        assert str(out[0]) == "1996-12-31"

    def test_tend_now_substitutes_current_date(self, ctx):
        out = run('tend(doc("employees.xml")/employees/employee[2])', ctx)
        assert str(out[0]) == "1997-06-15"  # the fixture's current date

    def test_tinterval(self, ctx):
        out = run('tinterval(doc("employees.xml")/employees/employee[1])', ctx)
        assert out[0].get("tstart") == "1995-01-01"
        assert out[0].get("tend") == "1996-12-31"

    def test_timespan(self, ctx):
        out = run(
            'timespan(doc("employees.xml")/employees/employee[1]/salary[1])',
            ctx,
        )
        # 1995-01-01 .. 1995-05-31 inclusive
        assert out == [151]

    def test_telement(self, ctx):
        out = run(
            'telement(xs:date("1994-05-06"), xs:date("1995-05-06"))', ctx
        )
        element = out[0]
        assert element.name == "telement"
        assert element.get("tstart") == "1994-05-06"

    def test_missing_timestamps_raise(self, ctx):
        with pytest.raises(XQueryTypeError):
            run("tstart(element x { 1 })", ctx)

    def test_atomic_argument_raises(self, ctx):
        with pytest.raises(XQueryTypeError):
            run("tstart(5)", ctx)


class TestAllenPredicates:
    def test_toverlaps_true(self, ctx):
        out = run(
            'toverlaps(doc("employees.xml")/employees/employee[1], '
            'telement(xs:date("1994-05-06"), xs:date("1995-05-06")))',
            ctx,
        )
        assert out == [True]

    def test_toverlaps_false(self, ctx):
        out = run(
            'toverlaps(doc("employees.xml")/employees/employee[1], '
            'telement(xs:date("1999-01-01"), xs:date("1999-12-31")))',
            ctx,
        )
        assert out == [False]

    def test_tprecedes(self, ctx):
        out = run(
            'tprecedes(telement(xs:date("1990-01-01"), xs:date("1990-12-31")), '
            'doc("employees.xml")/employees/employee[1])',
            ctx,
        )
        assert out == [True]

    def test_tcontains(self, ctx):
        out = run(
            'tcontains(doc("employees.xml")/employees/employee[1], '
            'doc("employees.xml")/employees/employee[1]/salary[1])',
            ctx,
        )
        assert out == [True]

    def test_tequals(self, ctx):
        out = run(
            'tequals(doc("employees.xml")/employees/employee[1], '
            'doc("employees.xml")/employees/employee[1])',
            ctx,
        )
        assert out == [True]

    def test_tmeets(self, ctx):
        out = run(
            'tmeets(doc("employees.xml")/employees/employee[1]/salary[1], '
            'doc("employees.xml")/employees/employee[1]/salary[2])',
            ctx,
        )
        assert out == [True]

    def test_overlapinterval(self, ctx):
        out = run(
            'overlapinterval(doc("employees.xml")/employees/employee[1], '
            'telement(xs:date("1994-05-06"), xs:date("1995-05-06")))',
            ctx,
        )
        assert out[0].name == "interval"
        assert out[0].get("tstart") == "1995-01-01"
        assert out[0].get("tend") == "1995-05-06"

    def test_overlapinterval_empty_when_disjoint(self, ctx):
        out = run(
            'overlapinterval(doc("employees.xml")/employees/employee[1], '
            'telement(xs:date("1999-01-01"), xs:date("1999-12-31")))',
            ctx,
        )
        assert out == []


class TestRestructuring:
    def test_coalesce_merges_adjacent(self, ctx):
        out = run(
            'coalesce(doc("employees.xml")/employees/employee[name="Bob"]/title)',
            ctx,
        )
        assert len(out) == 1
        assert out[0].get("tstart") == "1995-01-01"
        assert out[0].get("tend") == "1996-12-31"

    def test_restructure_intersects_histories(self, ctx):
        out = run(
            'restructure(doc("employees.xml")/employees/employee[name="Bob"]/deptno, '
            'doc("employees.xml")/employees/employee[name="Bob"]/title)',
            ctx,
        )
        assert len(out) == 1

    def test_restructure_disjoint_is_empty(self, ctx):
        out = run(
            'restructure(doc("employees.xml")/employees/employee[name="Bob"]/deptno, '
            'telement(xs:date("2001-01-01"), xs:date("2001-12-31")))',
            ctx,
        )
        assert out == []


class TestNowRewriting:
    def test_rtend_replaces_forever(self, ctx):
        out = run(
            'rtend(doc("employees.xml")/employees/employee[name="Ann"])', ctx
        )
        assert out[0].get("tend") == "1997-06-15"
        # children rewritten too
        assert out[0].first("salary") is not None
        for salary in out[0].elements("salary"):
            assert salary.get("tend") != "9999-12-31"

    def test_externalnow_replaces_with_label(self, ctx):
        out = run(
            'externalnow(doc("employees.xml")/employees/employee[name="Ann"])',
            ctx,
        )
        assert out[0].get("tend") == "now"

    def test_original_untouched(self, ctx, documents):
        run('rtend(doc("employees.xml")/employees/employee[name="Ann"])', ctx)
        ann = [
            e
            for e in documents["employees.xml"].elements("employee")
            if e.first("name").text() == "Ann"
        ][0]
        assert ann.get("tend") == "9999-12-31"


class TestTemporalAggregates:
    def test_tavg_returns_periods(self, ctx):
        out = run(
            'let $s := document("emp.xml")/employees/employee/salary '
            "return tavg($s)",
            ctx,
        )
        assert out, "tavg returned nothing"
        assert all(isinstance(e, Element) and e.name == "tavg" for e in out)
        # periods must be chronological and disjoint
        starts = [e.get("tstart") for e in out]
        assert starts == sorted(starts)

    def test_tavg_value_at_known_point(self, ctx):
        out = run(
            'let $s := document("emp.xml")/employees/employee/salary '
            "return tavg($s)",
            ctx,
        )
        # On 1995-07-01: Bob 70000, Ann 65000, Carl 55000 -> avg 63333.33
        covering = [
            e
            for e in out
            if e.get("tstart") <= "1995-07-01" <= e.get("tend")
        ]
        assert len(covering) == 1
        assert abs(float(covering[0].text()) - 63333.3333) < 0.1

    def test_tcount(self, ctx):
        out = run(
            'tcount(doc("employees.xml")/employees/employee/salary)', ctx
        )
        assert out[0].name == "tcount"

    def test_tmax(self, ctx):
        out = run(
            'tmax(doc("employees.xml")/employees/employee/salary)', ctx
        )
        values = {e.text() for e in out}
        assert "72000" in values

    def test_rising(self, ctx):
        out = run(
            'rising(doc("employees.xml")/employees/employee[name="Bob"]/salary)',
            ctx,
        )
        # Bob's salary only rises: the whole employment period.
        assert out[0].get("tstart") == "1995-01-01"
        assert out[0].get("tend") == "1996-12-31"
