"""End-to-end check of the paper's Section 6.4 segment restriction.

A snapshot query over a clustered archive must (a) fire the
segment-restriction rule, (b) return exactly the rows the unoptimized
plan returns, and (c) scan fewer rows doing it — measured through the
``sql.rows_scanned`` counter the physical operators maintain.
"""

import pytest

from repro.bench.harness import build_archis
from repro.obs import get_registry
from repro.xmlkit import serialize


def snapshot_query(date):
    return (
        'for $s in doc("employees.xml")/employees/employee/salary'
        f'[tstart(.) <= xs:date("{date}") and tend(.) >= xs:date("{date}")] '
        "return $s"
    )


def canon(items):
    return sorted(
        serialize(x) if hasattr(x, "name") else repr(x) for x in items
    )


@pytest.fixture(scope="module")
def clustered():
    """A segmented archive with several frozen segments."""
    _, archis, _ = build_archis(
        employees=25, years=8, umin=0.4, min_segment_rows=64
    )
    assert archis.segments.freeze_count > 0, "dataset too small to freeze"
    return archis


def run_counted(archis, query):
    scanned = get_registry().counter("sql.rows_scanned")
    before = scanned.value
    rows = canon(archis.xquery(query, allow_fallback=False).rows)
    return rows, scanned.value - before


class TestSegmentRestrictionEndToEnd:
    def test_explain_shows_the_rule(self, clustered):
        result = clustered.explain(
            snapshot_query("1986-06-01"), allow_fallback=False
        )
        assert result.plan is not None
        assert any("segment-restriction" in r for r in result.plan.rules)

    def test_same_rows_fewer_scanned(self, clustered):
        query = snapshot_query("1986-06-01")
        optimized_rows, optimized_scanned = run_counted(clustered, query)
        assert optimized_rows  # the snapshot is not empty

        clustered.db.optimizer_enabled = False
        try:
            naive_rows, naive_scanned = run_counted(clustered, query)
        finally:
            clustered.db.optimizer_enabled = True

        assert optimized_rows == naive_rows
        assert optimized_scanned < naive_scanned

    def test_slicing_window_restricted_too(self, clustered):
        query = (
            'for $e in doc("employees.xml")/employees/employee'
            '[toverlaps(., telement(xs:date("1986-01-01"), '
            'xs:date("1986-12-31")))] '
            "return $e/name"
        )
        result = clustered.explain(query, allow_fallback=False)
        assert result.plan is not None
        assert any("segment-restriction" in r for r in result.plan.rules)

        optimized_rows, optimized_scanned = run_counted(clustered, query)
        clustered.db.optimizer_enabled = False
        try:
            naive_rows, naive_scanned = run_counted(clustered, query)
        finally:
            clustered.db.optimizer_enabled = True
        assert optimized_rows == naive_rows
        assert optimized_scanned <= naive_scanned

    def test_translate_renders_the_restricted_sql(self, clustered):
        sql = clustered.translate(snapshot_query("1986-06-01"))
        assert "segno" in sql or "seg_" in sql or "slice_" in sql

    def test_compressed_archive_same_answers(self):
        _, archis, _ = build_archis(
            employees=15, years=5, umin=0.4, min_segment_rows=64,
            compress=True,
        )
        query = snapshot_query("1986-06-01")
        optimized_rows, _ = run_counted(archis, query)
        archis.db.optimizer_enabled = False
        try:
            naive_rows, _ = run_counted(archis, query)
        finally:
            archis.db.optimizer_enabled = True
        assert optimized_rows == naive_rows
