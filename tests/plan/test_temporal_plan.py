"""The sequenced temporal operators and FOR SYSTEM_TIME lowering.

Runs against a plain :class:`Database` holding hand-built H-table rows
(closed day intervals, ``FOREVER`` = still current), so every operator's
semantics is pinned without the full archive machinery on top.
"""

import pytest

from repro.errors import SqlPlanError
from repro.rdb import ColumnType, Database
from repro.util.timeutil import FOREVER


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "emp_salary",
        [
            ("id", ColumnType.INT),
            ("salary", ColumnType.INT),
            ("tstart", ColumnType.INT),
            ("tend", ColumnType.INT),
        ],
    )
    database.create_table(
        "emp_title",
        [
            ("id", ColumnType.INT),
            ("title", ColumnType.VARCHAR),
            ("tstart", ColumnType.INT),
            ("tend", ColumnType.INT),
        ],
    )
    salary = database.table("emp_salary")
    # id 1: 100 on [10, 19], 200 on [20, now); id 2: 500 on [15, 24]
    salary.insert((1, 100, 10, 19))
    salary.insert((1, 200, 20, FOREVER))
    salary.insert((2, 500, 15, 24))
    title = database.table("emp_title")
    # id 1: clerk [10, 24], boss [25, now); id 2: clerk [30, now)
    title.insert((1, "clerk", 10, 24))
    title.insert((1, "boss", 25, FOREVER))
    title.insert((2, "clerk", 30, FOREVER))
    return database


def rows(db, sql):
    return db.sql(sql).rows


class TestForSystemTime:
    def test_as_of_picks_the_covering_versions(self, db):
        got = rows(
            db,
            "SELECT t.id, t.salary FROM emp_salary t "
            "FOR SYSTEM_TIME AS OF 18 ORDER BY t.id",
        )
        assert got == [(1, 100), (2, 500)]

    def test_as_of_now_sees_only_current_rows(self, db):
        got = rows(
            db,
            "SELECT t.id, t.salary FROM emp_salary t "
            "FOR SYSTEM_TIME AS OF 'now' ORDER BY t.id",
        )
        assert got == [(1, 200)]

    def test_from_to_is_closed_open(self, db):
        # [15, 20): version starting exactly at 20 is excluded
        got = rows(
            db,
            "SELECT t.id, t.salary FROM emp_salary t "
            "FOR SYSTEM_TIME FROM 15 TO 20 ORDER BY t.id, t.salary",
        )
        assert got == [(1, 100), (2, 500)]

    def test_between_is_closed_closed(self, db):
        got = rows(
            db,
            "SELECT t.id, t.salary FROM emp_salary t "
            "FOR SYSTEM_TIME BETWEEN 15 AND 20 ORDER BY t.id, t.salary",
        )
        assert got == [(1, 100), (1, 200), (2, 500)]

    def test_params_bind_the_window(self, db):
        got = db.sql(
            "SELECT t.id FROM emp_salary t FOR SYSTEM_TIME FROM :lo TO :hi "
            "ORDER BY t.id",
            {"lo": 15, "hi": 20},
        ).rows
        assert got == [(1,), (2,)]

    def test_matches_explicit_interval_predicates(self, db):
        sugar = rows(
            db,
            "SELECT t.id, t.salary FROM emp_salary t "
            "FOR SYSTEM_TIME AS OF 22 ORDER BY t.id",
        )
        spelled = rows(
            db,
            "SELECT t.id, t.salary FROM emp_salary t "
            "WHERE t.tstart <= 22 AND t.tend >= 22 ORDER BY t.id",
        )
        assert sugar == spelled == [(1, 200), (2, 500)]


class TestTemporalJoin:
    def test_intersects_intervals_and_drops_disjoint_pairs(self, db):
        got = rows(
            db,
            "SELECT a.id, a.salary, b.title, a.tstart, a.tend "
            "FROM emp_salary a TEMPORAL JOIN emp_title b ON a.id = b.id "
            "ORDER BY a.id, a.tstart",
        )
        # id 1: (100,[10,19])x(clerk,[10,24]) -> [10,19];
        #       (200,[20,now))x(clerk,[10,24]) -> [20,24];
        #       (200,[20,now))x(boss,[25,now)) -> [25,now)
        # id 2: (500,[15,24]) x (clerk,[30,now)) -> disjoint, dropped
        assert got == [
            (1, 100, "clerk", 10, 19),
            (1, 200, "clerk", 20, 24),
            (1, 200, "boss", 25, FOREVER),
        ]

    def test_interval_readable_under_either_alias(self, db):
        via_b = rows(
            db,
            "SELECT a.id, b.tstart, b.tend "
            "FROM emp_salary a TEMPORAL JOIN emp_title b ON a.id = b.id "
            "ORDER BY a.id, b.tstart",
        )
        via_a = rows(
            db,
            "SELECT a.id, a.tstart, a.tend "
            "FROM emp_salary a TEMPORAL JOIN emp_title b ON a.id = b.id "
            "ORDER BY a.id, a.tstart",
        )
        assert via_a == via_b

    def test_join_needs_an_equality_pair(self, db):
        with pytest.raises(SqlPlanError):
            db.sql(
                "SELECT a.id FROM emp_salary a TEMPORAL JOIN emp_title b "
                "ON a.id > b.id"
            )

    def test_join_sides_need_interval_columns(self, db):
        db.sql("CREATE TABLE plain (id INT, v INT)")
        with pytest.raises(SqlPlanError):
            db.sql(
                "SELECT a.id FROM emp_salary a TEMPORAL JOIN plain b "
                "ON a.id = b.id"
            )


class TestNormalize:
    def test_adjacent_periods_with_equal_values_merge(self, db):
        # project id only: id 1's [10,19] and [20,now) rows become one period
        got = rows(
            db,
            "SELECT NORMALIZE t.id, t.tstart, t.tend FROM emp_salary t",
        )
        assert got == [(1, 10, FOREVER), (2, 15, 24)]

    def test_value_changes_keep_periods_apart(self, db):
        got = rows(
            db,
            "SELECT NORMALIZE t.id, t.salary, t.tstart, t.tend "
            "FROM emp_salary t",
        )
        assert got == [
            (1, 100, 10, 19),
            (1, 200, 20, FOREVER),
            (2, 500, 15, 24),
        ]

    def test_normalize_requires_period_columns(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT NORMALIZE t.id FROM emp_salary t")


class TestSequencedAggregates:
    def test_tavg_emits_constant_value_periods(self, db):
        got = rows(db, "SELECT tavg(t.salary) FROM emp_salary t")
        assert got == [
            (100.0, 10, 14),
            (300.0, 15, 19),
            (350.0, 20, 24),
            (200.0, 25, FOREVER),
        ]

    def test_tcount_star_counts_live_versions(self, db):
        got = rows(db, "SELECT tcount(*) FROM emp_salary t")
        assert got == [(1, 10, 14), (2, 15, 24), (1, 25, FOREVER)]

    def test_tsum_group_by_key(self, db):
        got = rows(
            db,
            "SELECT t.id, tsum(t.salary) FROM emp_salary t GROUP BY t.id",
        )
        assert got == [
            (1, 100.0, 10, 19),
            (1, 200.0, 20, FOREVER),
            (2, 500.0, 15, 24),
        ]

    def test_alias_names_the_value_column(self, db):
        result = db.sql("SELECT tavg(t.salary) AS avg_salary FROM emp_salary t")
        assert result.columns == ["avg_salary", "tstart", "tend"]

    def test_windowed_aggregate_composes_with_for_system_time(self, db):
        got = rows(
            db,
            "SELECT tcount(*) FROM emp_salary t "
            "FOR SYSTEM_TIME BETWEEN 15 AND 24",
        )
        # only versions overlapping [15, 24] feed the sweep
        assert got == [(1, 10, 14), (2, 15, 24), (1, 25, FOREVER)]

    def test_mixing_row_and_sequenced_aggregates_fails(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT tavg(t.salary), count(*) FROM emp_salary t")


class TestOptimizerEquivalence:
    QUERIES = (
        "SELECT t.id, t.salary FROM emp_salary t FOR SYSTEM_TIME AS OF 18 "
        "ORDER BY t.id",
        "SELECT a.id, a.salary, b.title, a.tstart, a.tend "
        "FROM emp_salary a TEMPORAL JOIN emp_title b ON a.id = b.id "
        "ORDER BY a.id, a.tstart",
        "SELECT NORMALIZE t.id, t.tstart, t.tend FROM emp_salary t",
        "SELECT tavg(t.salary) FROM emp_salary t",
    )

    def test_same_rows_with_optimizer_off(self, db):
        for sql in self.QUERIES:
            optimized = db.sql(sql).rows
            db.optimizer_enabled = False
            try:
                naive = db.sql(sql).rows
            finally:
                db.optimizer_enabled = True
            assert optimized == naive, sql


class TestTemporalMetrics:
    def test_clause_and_operator_counters_move(self, db):
        from repro.obs.metrics import get_registry

        registry = get_registry()
        clauses = registry.labeled_counter("temporal.clauses")
        join_rows = registry.counter("temporal.join.rows")
        periods = registry.counter("temporal.aggregate.periods")
        before = (clauses.total, join_rows.value, periods.value)
        db.sql("SELECT t.id FROM emp_salary t FOR SYSTEM_TIME AS OF 18")
        db.sql(
            "SELECT a.id FROM emp_salary a TEMPORAL JOIN emp_title b "
            "ON a.id = b.id"
        )
        db.sql("SELECT tavg(t.salary) FROM emp_salary t")
        assert clauses.total > before[0]
        assert join_rows.value > before[1]
        assert periods.value > before[2]
