"""Golden-plan snapshots: the rendered output of representative plans.

These pin the EXPLAIN format (``SelectPlan.report().format()``) and the
optimized-SQL rendering so plan regressions show up as a readable diff.
Run by ``scripts/check.sh``.
"""

import textwrap

import pytest

from repro.plan.render import to_sql
from repro.rdb import Database
from repro.sql import parse_sql
from repro.sql.planner import SelectPlan


@pytest.fixture
def db():
    database = Database()
    database.sql(
        "CREATE TABLE employee (id INT, name VARCHAR, salary INT, deptno INT)"
    )
    database.sql("CREATE TABLE dept (deptno INT, dname VARCHAR)")
    database.sql("CREATE INDEX emp_dept ON employee (deptno, salary)")
    return database


def report_of(db, sql):
    plan = SelectPlan(db, parse_sql(sql))
    return plan, plan.report().format()


def golden(text):
    return textwrap.dedent(text).strip("\n")


class TestGoldenPlans:
    def test_fold_and_pushdown(self, db):
        plan, report = report_of(
            db,
            "SELECT e.name FROM employee AS e WHERE e.salary > 2 * 30000 "
            "ORDER BY e.name",
        )
        assert report == golden(
            """
            rules:
              constant-folding: folded 1 constant expression(s)
              predicate-pushdown: 1 predicate(s) into e
            logical plan:
              Project [e.name]
                Sort [e.name]
                  Filter [e.salary > 2 * 30000]
                    Scan employee AS e
            optimized plan:
              Project [e.name]
                Sort [e.name]
                  Scan employee AS e [e.salary > 60000]
            physical plan:
              Project
                Sort
                  SeqScan employee AS e
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT e.name FROM employee AS e WHERE e.salary > 60000 "
            "ORDER BY e.name"
        )

    def test_index_and_hash_join(self, db):
        plan, report = report_of(
            db,
            "SELECT e.name, d.dname FROM employee AS e, dept AS d "
            "WHERE e.deptno = d.deptno AND e.deptno = 7 "
            "AND e.salary >= 50000",
        )
        assert report == golden(
            """
            rules:
              predicate-pushdown: 2 predicate(s) into e
              index-selection: e: employee via index emp_dept
              join-selection: hash join on e.deptno = d.deptno
            logical plan:
              Project [e.name, d.dname]
                Filter [e.deptno = d.deptno AND e.deptno = 7 AND e.salary >= 50000]
                  Join [nested]
                    Scan employee AS e
                    Scan dept AS d
            optimized plan:
              Project [e.name, d.dname]
                Join [hash] on e.deptno = d.deptno
                  IndexScan employee AS e using emp_dept eq [deptno = 7] range salary in [50000, +inf] [e.salary >= 50000]
                  Scan dept AS d
            physical plan:
              Project
                HashJoin on e.deptno = d.deptno
                  IndexScan employee AS e using emp_dept
                  SeqScan dept AS d
            """
        )

    def test_aggregate_plan_unchanged(self, db):
        plan, report = report_of(
            db, "SELECT count(*), e.deptno FROM employee AS e GROUP BY e.deptno"
        )
        assert report == golden(
            """
            rules:
              (none fired)
            logical plan:
              Aggregate [count(*), e.deptno] group by [e.deptno]
                Scan employee AS e
            optimized plan:
              Aggregate [count(*), e.deptno] group by [e.deptno]
                Scan employee AS e
            physical plan:
              Aggregate
                SeqScan employee AS e
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT count(*), e.deptno FROM employee AS e GROUP BY e.deptno"
        )

    def test_optimized_sql_reparses_to_the_same_plan(self, db):
        """to_sql output is valid SQL that plans back to the same shape."""
        sql = (
            "SELECT e.name FROM employee AS e, dept AS d "
            "WHERE e.deptno = d.deptno AND e.salary > 10 + 20"
        )
        first = SelectPlan(db, parse_sql(sql))
        second = SelectPlan(db, parse_sql(to_sql(first.optimized)))
        assert to_sql(second.optimized) == to_sql(first.optimized)
