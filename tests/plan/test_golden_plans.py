"""Golden-plan snapshots: the rendered output of representative plans.

These pin the EXPLAIN format (``SelectPlan.report().format()``) and the
optimized-SQL rendering so plan regressions show up as a readable diff.
Run by ``scripts/check.sh``.
"""

import textwrap

import pytest

from repro.plan.render import to_sql
from repro.rdb import Database
from repro.sql import parse_sql
from repro.sql.planner import SelectPlan


@pytest.fixture
def db():
    database = Database()
    database.sql(
        "CREATE TABLE employee (id INT, name VARCHAR, salary INT, deptno INT)"
    )
    database.sql("CREATE TABLE dept (deptno INT, dname VARCHAR)")
    database.sql("CREATE INDEX emp_dept ON employee (deptno, salary)")
    return database


def report_of(db, sql):
    plan = SelectPlan(db, parse_sql(sql))
    return plan, plan.report().format()


def golden(text):
    return textwrap.dedent(text).strip("\n")


class TestGoldenPlans:
    def test_fold_and_pushdown(self, db):
        plan, report = report_of(
            db,
            "SELECT e.name FROM employee AS e WHERE e.salary > 2 * 30000 "
            "ORDER BY e.name",
        )
        assert report == golden(
            """
            rules:
              constant-folding: folded 1 constant expression(s)
              predicate-pushdown: 1 predicate(s) into e
            logical plan:
              Project [e.name]
                Sort [e.name]
                  Filter [e.salary > 2 * 30000]
                    Scan employee AS e
            optimized plan:
              Project [e.name]
                Sort [e.name]
                  Scan employee AS e [e.salary > 60000]
            physical plan:
              Project
                Sort
                  SeqScan employee AS e
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT e.name FROM employee AS e WHERE e.salary > 60000 "
            "ORDER BY e.name"
        )

    def test_index_and_hash_join(self, db):
        plan, report = report_of(
            db,
            "SELECT e.name, d.dname FROM employee AS e, dept AS d "
            "WHERE e.deptno = d.deptno AND e.deptno = 7 "
            "AND e.salary >= 50000",
        )
        assert report == golden(
            """
            rules:
              predicate-pushdown: 2 predicate(s) into e
              index-selection: e: employee via index emp_dept
              join-selection: hash join on e.deptno = d.deptno
            logical plan:
              Project [e.name, d.dname]
                Filter [e.deptno = d.deptno AND e.deptno = 7 AND e.salary >= 50000]
                  Join [nested]
                    Scan employee AS e
                    Scan dept AS d
            optimized plan:
              Project [e.name, d.dname]
                Join [hash] on e.deptno = d.deptno
                  IndexScan employee AS e using emp_dept eq [deptno = 7] range salary in [50000, +inf] [e.salary >= 50000]
                  Scan dept AS d
            physical plan:
              Project
                HashJoin on e.deptno = d.deptno
                  IndexScan employee AS e using emp_dept
                  SeqScan dept AS d
            """
        )

    def test_aggregate_plan_unchanged(self, db):
        plan, report = report_of(
            db, "SELECT count(*), e.deptno FROM employee AS e GROUP BY e.deptno"
        )
        assert report == golden(
            """
            rules:
              (none fired)
            logical plan:
              Aggregate [count(*), e.deptno] group by [e.deptno]
                Scan employee AS e
            optimized plan:
              Aggregate [count(*), e.deptno] group by [e.deptno]
                Scan employee AS e
            physical plan:
              Aggregate
                SeqScan employee AS e
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT count(*), e.deptno FROM employee AS e GROUP BY e.deptno"
        )

    def test_optimized_sql_reparses_to_the_same_plan(self, db):
        """to_sql output is valid SQL that plans back to the same shape."""
        sql = (
            "SELECT e.name FROM employee AS e, dept AS d "
            "WHERE e.deptno = d.deptno AND e.salary > 10 + 20"
        )
        first = SelectPlan(db, parse_sql(sql))
        second = SelectPlan(db, parse_sql(to_sql(first.optimized)))
        assert to_sql(second.optimized) == to_sql(first.optimized)


@pytest.fixture
def temporal_db():
    """Two H-tables plus the hooks ArchIS would install: registered
    ``history_`` functions and a segment provider that answers one
    uncompressed segment for ``emp_salary`` (so the Section 6.4 segment
    restriction fires deterministically)."""
    from repro.plan import SegmentHints

    database = Database()
    database.sql(
        "CREATE TABLE emp_salary "
        "(id INT, salary INT, tstart INT, tend INT, segno INT)"
    )
    database.sql(
        "CREATE TABLE emp_title "
        "(id INT, title VARCHAR, tstart INT, tend INT, segno INT)"
    )
    database.register_table_function("history_emp_salary", lambda: iter(()))
    database.register_table_function("history_emp_title", lambda: iter(()))
    database.segment_provider = lambda name: (
        SegmentHints(False, lambda lo, hi: [2])
        if name == "emp_salary"
        else None
    )
    return database


class TestGoldenTemporalPlans:
    """FOR SYSTEM_TIME and the sequenced operators, rendered end to end."""

    def test_as_of_drives_segment_restriction(self, temporal_db):
        plan, report = report_of(
            temporal_db,
            "SELECT t.id, t.salary FROM TABLE(history_emp_salary()) "
            "AS t(id, salary, tstart, tend, segno) "
            "FOR SYSTEM_TIME AS OF 4000",
        )
        assert report == golden(
            """
            rules:
              segment-restriction: t: history_emp_salary() -> emp_salary WHERE segno = 2
            logical plan:
              Project [t.id, t.salary]
                FunctionScan history_emp_salary() AS t [t.tstart <= 4000 AND t.tend >= 4000]
            optimized plan:
              Project [t.id, t.salary]
                Scan emp_salary AS t [t.tstart <= 4000 AND t.tend >= 4000 AND t.segno = 2]
            physical plan:
              Project
                SeqScan emp_salary AS t
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT t.id, t.salary FROM emp_salary AS t "
            "WHERE t.tstart <= 4000 AND t.tend >= 4000 AND t.segno = 2"
        )

    def test_temporal_join_reads_through_history_functions(self, temporal_db):
        plan, report = report_of(
            temporal_db,
            "SELECT a.id, a.salary, b.title, a.tstart, a.tend "
            "FROM emp_salary a TEMPORAL JOIN emp_title b ON a.id = b.id",
        )
        assert report == golden(
            """
            rules:
              (none fired)
            logical plan:
              Project [a.id, a.salary, b.title, a.tstart, a.tend]
                TemporalJoin on a.id = b.id intersect [tstart, tend]
                  FunctionScan history_emp_salary() AS a
                  FunctionScan history_emp_title() AS b
            optimized plan:
              Project [a.id, a.salary, b.title, a.tstart, a.tend]
                TemporalJoin on a.id = b.id intersect [tstart, tend]
                  FunctionScan history_emp_salary() AS a
                  FunctionScan history_emp_title() AS b
            physical plan:
              Project
                TemporalJoin on a.id = b.id
                  FunctionScan history_emp_salary AS a
                  FunctionScan history_emp_title AS b
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT a.id, a.salary, b.title, a.tstart, a.tend "
            "FROM TABLE(history_emp_salary()) "
            "AS a(id, salary, tstart, tend, segno) "
            "TEMPORAL JOIN TABLE(history_emp_title()) "
            "AS b(id, title, tstart, tend, segno) ON a.id = b.id"
        )

    def test_normalize_plan(self, temporal_db):
        plan, report = report_of(
            temporal_db,
            "SELECT NORMALIZE t.id, t.tstart, t.tend FROM emp_salary t",
        )
        assert report == golden(
            """
            rules:
              (none fired)
            logical plan:
              Coalesce periods at [1, 2]
                Project [t.id, t.tstart, t.tend]
                  FunctionScan history_emp_salary() AS t
            optimized plan:
              Coalesce periods at [1, 2]
                Project [t.id, t.tstart, t.tend]
                  FunctionScan history_emp_salary() AS t
            physical plan:
              Coalesce
                Project
                  FunctionScan history_emp_salary AS t
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT NORMALIZE t.id, t.tstart, t.tend "
            "FROM TABLE(history_emp_salary()) "
            "AS t(id, salary, tstart, tend, segno)"
        )

    def test_sequenced_aggregate_plan(self, temporal_db):
        plan, report = report_of(
            temporal_db,
            "SELECT t.id, tavg(t.salary) FROM emp_salary t GROUP BY t.id",
        )
        assert report == golden(
            """
            rules:
              (none fired)
            logical plan:
              SequencedAggregate [avg] [t.id, tavg(t.salary), t.tstart, t.tend] group by [t.id]
                FunctionScan history_emp_salary() AS t
            optimized plan:
              SequencedAggregate [avg] [t.id, tavg(t.salary), t.tstart, t.tend] group by [t.id]
                FunctionScan history_emp_salary() AS t
            physical plan:
              SequencedAggregate [avg]
                FunctionScan history_emp_salary AS t
            """
        )
        assert to_sql(plan.optimized) == (
            "SELECT t.id, tavg(t.salary) FROM TABLE(history_emp_salary()) "
            "AS t(id, salary, tstart, tend, segno) GROUP BY t.id"
        )

    def test_temporal_sql_reparses_to_the_same_plan(self, temporal_db):
        for sql in (
            "SELECT a.id, b.title FROM emp_salary a "
            "TEMPORAL JOIN emp_title b ON a.id = b.id",
            "SELECT NORMALIZE t.id, t.tstart, t.tend FROM emp_salary t",
            "SELECT t.id, tavg(t.salary) FROM emp_salary t GROUP BY t.id",
        ):
            first = SelectPlan(temporal_db, parse_sql(sql))
            second = SelectPlan(
                temporal_db, parse_sql(to_sql(first.optimized))
            )
            assert to_sql(second.optimized) == to_sql(first.optimized)
