"""Unit tests for the optimizer rules, one class per rule.

Every rule must preserve result semantics, so each class also checks the
rewritten plan (or the full pipeline) against the unoptimized answer.
"""

import pytest

from repro.plan import PlanContext, SegmentHints, build_logical, nodes, rules
from repro.rdb import Database
from repro.sql import ast, parse_sql
from repro.sql.planner import SelectPlan, function_registry, source_scope


@pytest.fixture
def db():
    database = Database()
    database.sql(
        "CREATE TABLE employee (id INT, name VARCHAR, salary INT, "
        "PRIMARY KEY (id))"
    )
    database.sql(
        "INSERT INTO employee VALUES "
        "(1, 'Bob', 60000), (2, 'Ann', 72000), (3, 'Carl', 55000)"
    )
    database.sql("CREATE TABLE dept (deptno INT, dname VARCHAR)")
    database.sql("INSERT INTO dept VALUES (1, 'eng'), (2, 'ops')")
    return database


def plan_and_ctx(db, sql):
    select = parse_sql(sql)
    scope = source_scope(db, select.sources)
    ctx = PlanContext(db, scope, function_registry(db))
    return build_logical(select, scope), ctx


def only_leaf(plan):
    found = list(nodes.leaves(plan))
    assert len(found) == 1
    return found[0]


def rows_with_and_without_optimizer(db, sql):
    optimized = db.sql(sql).rows
    db.optimizer_enabled = False
    try:
        naive = db.sql(sql).rows
    finally:
        db.optimizer_enabled = True
    return optimized, naive


class TestConstantFolding:
    def test_arithmetic_folds_inside_predicates(self, db):
        plan, ctx = plan_and_ctx(
            db, "SELECT e.id FROM employee AS e WHERE e.salary > 1000 * 60"
        )
        plan, details = rules.fold_constants(plan, ctx)
        assert details == ["folded 1 constant expression(s)"]
        predicate = plan.child.predicates[0]
        assert predicate.right == ast.Literal(60000)

    def test_true_conjunct_drops_the_filter(self, db):
        plan, ctx = plan_and_ctx(
            db, "SELECT e.id FROM employee AS e WHERE 1 = 1"
        )
        plan, details = rules.fold_constants(plan, ctx)
        assert details
        assert isinstance(plan.child, nodes.Scan)

    def test_false_conjunct_is_kept_as_contradiction(self, db):
        plan, ctx = plan_and_ctx(
            db, "SELECT e.id FROM employee AS e WHERE 1 = 2"
        )
        plan, _ = rules.fold_constants(plan, ctx)
        assert plan.child.predicates == (rules._FALSE,)

    def test_division_by_zero_is_left_alone(self, db):
        plan, ctx = plan_and_ctx(
            db, "SELECT e.id FROM employee AS e WHERE e.salary > 1 / 0"
        )
        plan, details = rules.fold_constants(plan, ctx)
        assert details == []

    def test_folded_query_answers_unchanged(self, db):
        sql = "SELECT id FROM employee WHERE salary >= 30000 * 2 ORDER BY id"
        optimized, naive = rows_with_and_without_optimizer(db, sql)
        assert optimized == naive == [(1,), (2,)]

    def test_false_where_returns_no_rows(self, db):
        assert db.sql("SELECT id FROM employee WHERE 1 = 0").rows == []


class TestPredicatePushdown:
    def test_single_alias_conjunct_moves_into_scan(self, db):
        plan, ctx = plan_and_ctx(
            db, "SELECT e.name FROM employee AS e WHERE e.salary > 60000"
        )
        plan, details = rules.push_down_predicates(plan, ctx)
        assert details == ["1 predicate(s) into e"]
        scan = plan.child
        assert isinstance(scan, nodes.Scan)
        assert len(scan.predicates) == 1

    def test_join_conjunct_stays_in_filter(self, db):
        plan, ctx = plan_and_ctx(
            db,
            "SELECT e.name FROM employee AS e, dept AS d "
            "WHERE e.id = d.deptno AND e.salary > 1",
        )
        plan, details = rules.push_down_predicates(plan, ctx)
        assert details == ["1 predicate(s) into e"]
        filter_node = plan.child
        assert isinstance(filter_node, nodes.Filter)
        assert len(filter_node.predicates) == 1  # only the join conjunct


class TestSegmentRestriction:
    DATE = 4000

    def history_scan(self, predicates):
        return nodes.FunctionScan(
            "history_employee",
            (),
            "t",
            ("id", "name", "tstart", "tend", "segno"),
            tuple(predicates),
        )

    def snapshot_predicates(self):
        return (
            ast.BinaryOp(
                "<=", ast.ColumnRef("t", "tstart"), ast.Literal(self.DATE)
            ),
            ast.BinaryOp(
                ">=", ast.ColumnRef("t", "tend"), ast.Literal(self.DATE)
            ),
        )

    def ctx(self, compressed, segnos):
        db = Database()
        db.segment_provider = lambda name: (
            SegmentHints(compressed, lambda lo, hi: list(segnos))
            if name == "employee"
            else None
        )
        return PlanContext(db, None, {})

    def test_single_uncompressed_segment_becomes_heap_scan(self):
        plan = self.history_scan(self.snapshot_predicates())
        plan, details = rules.restrict_segments(plan, self.ctx(False, [2]))
        assert isinstance(plan, nodes.Scan)
        assert plan.table == "employee"
        assert plan.predicates[-1] == ast.BinaryOp(
            "=", ast.ColumnRef("t", "segno"), ast.Literal(2)
        )
        assert details == ["t: history_employee() -> employee WHERE segno = 2"]

    def test_single_compressed_segment_uses_seg_function(self):
        plan = self.history_scan(self.snapshot_predicates())
        plan, details = rules.restrict_segments(plan, self.ctx(True, [2]))
        assert isinstance(plan, nodes.FunctionScan)
        assert plan.function == "seg_employee"
        assert plan.args == (ast.Literal(2), ast.Literal(2))

    def test_multi_segment_window_uses_slice_function(self):
        predicates = (
            ast.FunctionCall(
                "toverlaps",
                (
                    ast.ColumnRef("t", "tstart"),
                    ast.ColumnRef("t", "tend"),
                    ast.Literal(100),
                    ast.Literal(200),
                ),
            ),
        )
        plan = self.history_scan(predicates)
        plan, details = rules.restrict_segments(plan, self.ctx(False, [1, 2, 3]))
        assert isinstance(plan, nodes.FunctionScan)
        assert plan.function == "slice_employee"
        assert plan.args == (ast.Literal(1), ast.Literal(3))

    def test_reversed_comparison_is_recognized(self):
        predicates = (
            ast.BinaryOp(
                ">=", ast.Literal(self.DATE), ast.ColumnRef("t", "tstart")
            ),
            ast.BinaryOp(
                "<=", ast.Literal(self.DATE), ast.ColumnRef("t", "tend")
            ),
        )
        plan = self.history_scan(predicates)
        plan, details = rules.restrict_segments(plan, self.ctx(False, [1]))
        assert isinstance(plan, nodes.Scan)
        assert details

    def test_no_window_means_no_rewrite(self):
        predicates = (
            ast.BinaryOp(">", ast.ColumnRef("t", "salary"), ast.Literal(5)),
        )
        plan = self.history_scan(predicates)
        rewritten, details = rules.restrict_segments(
            plan, self.ctx(False, [1])
        )
        assert rewritten is plan
        assert details == []

    def test_no_hints_means_no_rewrite(self):
        plan = self.history_scan(self.snapshot_predicates())
        db = Database()  # no segment_provider
        rewritten, details = rules.restrict_segments(
            plan, PlanContext(db, None, {})
        )
        assert rewritten is plan
        assert details == []


class TestIndexSelection:
    def test_equality_predicate_becomes_index_scan(self, db):
        db.sql("CREATE INDEX emp_salary ON employee (salary)")
        plan, ctx = plan_and_ctx(
            db, "SELECT e.name FROM employee AS e WHERE e.salary = 60000"
        )
        plan, _ = rules.push_down_predicates(plan, ctx)
        plan, details = rules.select_indexes(plan, ctx)
        assert details == ["e: employee via index emp_salary"]
        scan = only_leaf(plan)
        assert isinstance(scan, nodes.IndexScan)
        assert scan.eq == (("salary", ast.Literal(60000)),)
        assert scan.predicates == ()  # equality conjunct consumed

    def test_range_conjunct_stays_residual(self, db):
        db.sql("CREATE INDEX emp_salary ON employee (salary)")
        plan, ctx = plan_and_ctx(
            db, "SELECT e.name FROM employee AS e WHERE e.salary > 55000"
        )
        plan, _ = rules.push_down_predicates(plan, ctx)
        plan, _ = rules.select_indexes(plan, ctx)
        scan = only_leaf(plan)
        assert isinstance(scan, nodes.IndexScan)
        assert scan.range_column == "salary"
        assert scan.low == ast.Literal(55000)
        assert not scan.low_inclusive
        assert len(scan.predicates) == 1  # range kept as residual filter

    def test_no_index_no_rewrite(self, db):
        plan, ctx = plan_and_ctx(
            db, "SELECT d.dname FROM dept AS d WHERE d.deptno = 1"
        )
        plan, _ = rules.push_down_predicates(plan, ctx)
        plan, details = rules.select_indexes(plan, ctx)
        assert details == []
        assert isinstance(only_leaf(plan), nodes.Scan)

    def test_index_scan_answers_match_heap_scan(self, db):
        db.sql("CREATE INDEX emp_salary ON employee (salary)")
        sql = (
            "SELECT name FROM employee WHERE salary >= 55000 "
            "AND salary < 72000 ORDER BY name"
        )
        optimized, naive = rows_with_and_without_optimizer(db, sql)
        assert optimized == naive == [("Bob",), ("Carl",)]


class TestJoinSelection:
    def test_equi_conjunct_becomes_hash_join(self, db):
        plan, ctx = plan_and_ctx(
            db,
            "SELECT e.name FROM employee AS e, dept AS d "
            "WHERE e.id = d.deptno",
        )
        plan, details = rules.select_joins(plan, ctx)
        assert details == ["hash join on e.id = d.deptno"]
        join = plan.child
        assert isinstance(join, nodes.Join)
        assert join.strategy == "hash"
        assert join.pairs == ((("e", "id"), ("d", "deptno")),)

    def test_non_equi_join_stays_nested(self, db):
        plan, ctx = plan_and_ctx(
            db,
            "SELECT e.name FROM employee AS e, dept AS d "
            "WHERE e.id > d.deptno",
        )
        plan, details = rules.select_joins(plan, ctx)
        assert details == []
        assert isinstance(plan.child, nodes.Filter)

    def test_join_answers_match_nested_loop(self, db):
        sql = (
            "SELECT e.name, d.dname FROM employee AS e, dept AS d "
            "WHERE e.id = d.deptno ORDER BY e.name"
        )
        optimized, naive = rows_with_and_without_optimizer(db, sql)
        assert optimized == naive == [("Ann", "ops"), ("Bob", "eng")]


class TestPipeline:
    def test_rule_firings_are_recorded_in_order(self, db):
        db.sql("CREATE INDEX emp_salary ON employee (salary)")
        plan = SelectPlan(
            db,
            parse_sql(
                "SELECT e.name FROM employee AS e, dept AS d "
                "WHERE e.id = d.deptno AND e.salary = 2 * 30000"
            ),
        )
        names = [firing.rule for firing in plan.rule_firings]
        assert names == [
            "constant-folding",
            "predicate-pushdown",
            "index-selection",
            "join-selection",
        ]

    def test_optimizer_disabled_keeps_the_naive_plan(self, db):
        db.optimizer_enabled = False
        try:
            plan = SelectPlan(
                db,
                parse_sql("SELECT e.id FROM employee AS e WHERE e.id = 1"),
            )
        finally:
            db.optimizer_enabled = True
        assert plan.rule_firings == ()
        assert plan.optimized is plan.logical
