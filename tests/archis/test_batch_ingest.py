"""Batched ingest equivalence matrix and durable-batch crash recovery.

The contract under test (DESIGN.md §4f): ``apply_pending(batch_size=N)``
must be *observably identical* to row-at-a-time apply — same H-table
bytes, same segment boundaries, same segment-manager counters — for
every batch size, every workload shape, and every crash point a durable
batch can die at.
"""

import pytest

from repro.archis import ArchIS, ArchISConfig, BatchArchiver
from repro.archis.validation import check_archive
from repro.obs import get_registry
from repro.rdb import ColumnType, Database
from repro.storage import InjectedCrash, get_crash_points

BATCH_SIZES = (1, 7, 256)


# -- deterministic workloads as explicit op lists ---------------------------
#
# Each op is one update-log entry, generated with non-decreasing days, so
# ``drain_ordered`` preserves generation order and "the first k entries"
# is a well-defined prefix for crash-recovery checks.


def employee_ops(count=120, population=9, per_round=4):
    """insert/update/delete mix over a small hot population.

    Ops come in same-day rounds (exercising the in-place same-day
    rewrite) separated by two-day gaps, the cadence the engine's
    deferred-freeze boundary assumes (a freeze draws its boundary at the
    last archived day; the next close must land at least one day past
    it)."""
    ops = []
    day = 0
    alive = []
    emitted = 0
    step = 0
    while emitted < count:
        day += 2
        ops.append(("advance", day))
        for _ in range(per_round):
            if emitted >= count:
                break
            if step < population:
                ops.append(("insert", step, f"n{step}", 1000 + step))
                alive.append(step)
            elif step % 29 == 0:  # late hires keep the population topped up
                ops.append(("insert", 1000 + step, f"n{step}", 1000 + step))
                alive.append(1000 + step)
            elif step % 17 == 0 and len(alive) > 4:
                ops.append(("delete", alive.pop(0)))
            else:
                key = alive[step % len(alive)]
                ops.append(("update", key, 1000 + step))
            emitted += 1
            step += 1
    return ops


def build_db(path=None):
    db = Database(path) if path else Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    return db


def replay(db, ops, upto=None):
    """Apply ``ops`` (each non-advance op = one update-log entry)."""
    table = db.table("employee")
    epoch = db.current_date
    rids = {}
    names = {}
    applied = 0
    for op in ops:
        if op[0] == "advance":
            db.advance_to(epoch + op[1])
            continue
        if upto is not None and applied >= upto:
            break
        if op[0] == "insert":
            _, key, name, salary = op
            rids[key] = table.insert((key, name, salary))
            names[key] = name
        elif op[0] == "update":
            _, key, salary = op
            rids[key] = table.update_rid(rids[key], (key, names[key], salary))
        else:
            _, key = op
            table.delete_rid(rids.pop(key))
            names.pop(key)
        applied += 1
    return applied


def make_tracked(umin, min_segment_rows=8, path=None):
    db = build_db(path)
    archis = ArchIS(
        db,
        config=ArchISConfig(umin=umin, min_segment_rows=min_segment_rows),
    )
    archis.track_table("employee")
    return archis


def archive_state(archis, with_rids=True):
    """Everything observable: H-table scans (rids included), segment
    table, and the segment manager's counters."""
    state = {}
    for relation in archis.relations.values():
        for name in relation.all_tables():
            table = archis.db.table(name)
            state[name] = (
                list(table.scan()) if with_rids else sorted(table.rows())
            )
    state["__segments"] = sorted(archis.db.table("segment").rows())
    segments = archis.segments
    state["__counters"] = (
        segments.live_segno,
        segments.live_start,
        segments.last_change,
        segments.stats.live,
        segments.stats.total,
        segments.freeze_count,
    )
    return state


class TestEquivalenceMatrix:
    """Batch apply == row-at-a-time apply, byte for byte."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("umin", [None, 0.5], ids=["unsegmented", "segmented"])
    def test_identical_state_for_every_batch_size(self, batch_size, umin):
        reference = make_tracked(umin)
        replay(reference.db, employee_ops())
        reference.apply_pending(batch_size=None)
        expected = archive_state(reference)

        batched = make_tracked(umin)
        replay(batched.db, employee_ops())
        applied = batched.apply_pending(batch_size=batch_size)
        assert applied > 0
        assert archive_state(batched) == expected
        assert check_archive(batched) == []

    @pytest.mark.parametrize("umin", [None, 0.5], ids=["unsegmented", "segmented"])
    def test_segment_boundaries_match(self, umin):
        reference = make_tracked(umin)
        replay(reference.db, employee_ops(count=300))
        reference.apply_pending(batch_size=None)

        batched = make_tracked(umin)
        replay(batched.db, employee_ops(count=300))
        batched.apply_pending(batch_size=13)
        assert batched.segments.freeze_count == reference.segments.freeze_count
        assert sorted(batched.db.table("segment").rows()) == sorted(
            reference.db.table("segment").rows()
        )

    def test_multi_relation_batches(self):
        def build():
            archis = make_tracked(0.5)
            db = archis.db
            db.create_table(
                "dept",
                [("id", ColumnType.INT), ("name", ColumnType.VARCHAR)],
                primary_key=("id",),
            )
            archis.track_table("dept")
            dept = db.table("dept")
            drids = {n: dept.insert((n, f"d{n}")) for n in range(3)}
            replay(db, employee_ops(count=60))
            for n in range(3):
                db.advance_days(1)
                drids[n] = dept.update_rid(drids[n], (n, f"dept-{n}"))
            dept.delete_rid(drids.pop(0))
            return archis

        reference = build()
        reference.apply_pending(batch_size=None)
        batched = build()
        batched.apply_pending(batch_size=7)
        assert archive_state(batched) == archive_state(reference)
        assert check_archive(batched) == []

    def test_batch_of_one_equals_row_at_a_time(self):
        """batch_size=1 is the degenerate case: per-entry batches must
        still match exactly (clearance checks run per entry)."""
        reference = make_tracked(0.5)
        replay(reference.db, employee_ops())
        reference.apply_pending(batch_size=None)
        batched = make_tracked(0.5)
        replay(batched.db, employee_ops())
        batched.apply_pending(batch_size=1)
        assert archive_state(batched) == archive_state(reference)

    def test_untracked_entries_are_dropped_like_row_apply(self):
        archis = make_tracked(None)
        db = archis.db
        replay(db, employee_ops(count=20))
        # a stray entry for a never-tracked table (e.g. tracked in a past
        # run): row-at-a-time apply drains and drops it, so must batches
        db.update_log.append(db.current_date, "scratch", "insert", (1,), None)
        applied = archis.apply_pending(batch_size=4)
        assert applied == 20
        assert db.update_log.pending() == []


class TestBatchArchiverApi:
    def test_batch_size_validation(self):
        archis = make_tracked(None)
        with pytest.raises(ValueError):
            BatchArchiver(archis, batch_size=0)

    def test_apply_empty_log_is_a_noop(self):
        archis = make_tracked(None)
        assert BatchArchiver(archis).apply() == 0

    def test_metrics_and_stats_surface(self):
        registry = get_registry()
        batches_before = registry.counter("ingest.batches").value
        archis = make_tracked(None)
        replay(archis.db, employee_ops(count=40))
        archis.apply_pending(batch_size=16)
        stats = archis.stats()["ingest"]
        assert stats["batches"] - batches_before >= 3
        assert stats["clearance_granted"] >= 1
        assert archis.stats()["config"]["batch_size"] is None

    def test_config_batch_size_is_the_default(self):
        archis = make_tracked(None)
        archis.config = archis.config.replace(batch_size=5)
        replay(archis.db, employee_ops(count=20))
        before = get_registry().counter("ingest.batches").value
        archis.apply_pending()
        assert get_registry().counter("ingest.batches").value - before == 4

    def test_clearance_denied_falls_back_to_per_entry_checks(self):
        registry = get_registry()
        denied_before = registry.counter("ingest.clearance_denied").value
        archis = make_tracked(0.5, min_segment_rows=4)
        replay(archis.db, employee_ops(count=300))
        archis.apply_pending(batch_size=64)
        assert archis.segments.freeze_count > 0
        assert registry.counter("ingest.clearance_denied").value > denied_before


class TestDurableBatches:
    """durable=True commits one WAL frame per batch; a crash mid-apply
    recovers to a whole-batch boundary, never a torn one."""

    BATCH = 16

    @pytest.fixture(autouse=True)
    def disarm_crash_points(self):
        yield
        get_crash_points().reset()

    def build_saved(self, path):
        archis = make_tracked(0.5, path=str(path))
        archis.save()
        return archis

    def prefix_states(self):
        """Row-at-a-time replays of every whole-batch prefix (rid-free:
        the file-backed run's physical layout may differ)."""
        ops = employee_ops()
        total = sum(1 for op in ops if op[0] != "advance")
        states = []
        boundaries = list(range(0, total, self.BATCH)) + [total]
        for upto in boundaries:
            archis = make_tracked(0.5)
            replay(archis.db, ops, upto=upto)
            archis.apply_pending(batch_size=None)
            states.append(archive_state(archis, with_rids=False))
        return states

    def test_one_commit_frame_per_batch(self, tmp_path):
        registry = get_registry()
        archis = self.build_saved(tmp_path / "durable.db")
        replay(archis.db, employee_ops())
        causes = registry.labeled_counter("wal.commits.cause")
        before = dict(causes.values).get("ingest", 0)
        applied = archis.apply_pending(batch_size=self.BATCH, durable=True)
        batches = -(-applied // self.BATCH)
        assert dict(causes.values)["ingest"] - before == batches
        archis.db.close()

    def test_durable_needs_a_wal_backed_database(self):
        archis = make_tracked(0.5)  # in-memory
        replay(archis.db, employee_ops(count=20))
        archiver = BatchArchiver(archis, batch_size=4, durable=True)
        assert archiver.durable is False
        archiver.apply()  # still applies, just without per-batch commits

    @pytest.mark.parametrize("occurrence", [1, 2, 4])
    def test_crash_between_batches_recovers_to_batch_boundary(
        self, tmp_path, occurrence
    ):
        expected_states = self.prefix_states()
        archis = self.build_saved(tmp_path / f"crash{occurrence}.db")
        replay(archis.db, employee_ops())
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("wal.commit.begin", occurrence):
                archis.apply_pending(batch_size=self.BATCH, durable=True)
        again = ArchIS.open(str(tmp_path / f"crash{occurrence}.db"))
        recovered = archive_state(again, with_rids=False)
        assert recovered in expected_states, (
            f"recovery after crash at commit #{occurrence} is not a "
            "whole-batch boundary"
        )
        # The update log is volatile: after a mid-ingest crash the
        # current table (committed with the first batch) is ahead of the
        # partially-applied archive, so live-consistency is expectedly
        # violated — exactly as after a crash mid row-at-a-time apply.
        # Every *archive-internal* invariant must still hold.
        violations = [
            v for v in check_archive(again) if v.check != "live-consistency"
        ]
        assert violations == []
        again.db.close()

    def test_crash_after_last_sync_keeps_every_batch(self, tmp_path):
        expected_states = self.prefix_states()
        archis = self.build_saved(tmp_path / "synced.db")
        replay(archis.db, employee_ops())
        with get_crash_points().recording() as fired:
            archis.apply_pending(batch_size=self.BATCH, durable=True)
        archis.db.close()
        syncs = sum(1 for name in fired if name == "wal.commit.synced")
        assert syncs >= 2

        archis = self.build_saved(tmp_path / "synced2.db")
        replay(archis.db, employee_ops())
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("wal.commit.synced", syncs):
                archis.apply_pending(batch_size=self.BATCH, durable=True)
        again = ArchIS.open(str(tmp_path / "synced2.db"))
        assert archive_state(again, with_rids=False) == expected_states[-1]
        assert check_archive(again) == []
        again.db.close()
