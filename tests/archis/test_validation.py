"""Tests for the archive consistency checker."""

from repro.archis.validation import Violation, check_archive

from tests.archis.conftest import load_bob_history, make_archis
from tests.archis.test_clustering import churn


class TestCleanArchives:
    def test_fresh_archive_clean(self):
        assert check_archive(make_archis()) == []

    def test_after_history_clean(self):
        archis = make_archis()
        load_bob_history(archis)
        assert check_archive(archis) == []

    def test_after_freezes_clean(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis)
        assert archis.segments.freeze_count >= 1
        assert check_archive(archis) == []

    def test_after_compression_clean(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis)
        archis.compress_archive()
        assert check_archive(archis) == []

    def test_unsegmented_clean(self):
        archis = make_archis(umin=None)
        churn(archis)
        assert check_archive(archis) == []

    def test_atlas_profile_clean(self):
        archis = make_archis(profile="atlas", umin=0.4, min_segment_rows=8)
        churn(archis)
        assert check_archive(archis) == []


class TestDetection:
    def test_detects_orphan_live_history(self):
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.apply_pending()
        # sabotage: remove the current row without firing triggers
        table = archis.db.table("employee")
        trigger = archis.trackers["employee"]
        trigger.detach()
        table.delete_where(lambda r: r["id"] == 1)
        violations = check_archive(archis)
        assert any(v.check == "live-consistency" for v in violations)

    def test_detects_corrupt_blob(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis, employees=10, rounds=12)
        archis.compress_archive()
        info = archis.archive.compressed_tables["employee_salary"]
        blob_table = archis.db.table(info.blob_table)
        first = next(iter(blob_table.rows()))
        archis.db.blobs.delete(first[4])
        new_id = archis.db.blobs.put(b"junk")
        blob_table.update_where(
            lambda r: r["blob_id"] == first[4], {"blob_id": new_id}
        )
        violations = check_archive(archis)
        assert any(v.check == "blob-integrity" for v in violations)

    def test_detects_covering_violation(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis)
        # sabotage: move a frozen-segment row's tstart past its segment end
        table = archis.db.table("employee_salary")
        frozen = archis.segments.archived_segments()[0]
        segno, segstart, segend = frozen
        for rid, row in table.scan():
            if row[4] == segno:
                bad = list(row)
                bad[2] = segend + 100  # tstart beyond segend
                bad[3] = segend + 200
                table.update_rid(rid, tuple(bad))
                break
        violations = check_archive(archis)
        assert any(v.check == "covering-eq1" for v in violations)

    def test_detects_segment_gap(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis)
        segment_table = archis.db.table("segment")
        segment_table.update_where(
            lambda r: True, {"segend": archis.db.current_date - 10**4}
        )
        violations = check_archive(archis)
        assert any(v.check == "segment-contiguity" for v in violations)

    def test_violation_renders(self):
        v = Violation("check", "table", "detail")
        assert "check" in str(v) and "detail" in str(v)
