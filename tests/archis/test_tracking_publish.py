"""Tests: change tracking into H-tables and H-document publication.

Replays the paper's Table 1 history and checks the published H-document
matches Figure 1/3 (temporally grouped, coalesced).
"""

import pytest

from repro.errors import ArchisError
from repro.util.timeutil import FOREVER, parse_date
from repro.xmlkit import serialize

from tests.archis.conftest import load_bob_history, make_archis


def titles_of(doc, key=1001):
    emp = [e for e in doc.elements() if e.first("id").text() == str(key)][0]
    return [
        (t.text(), t.get("tstart"), t.get("tend"))
        for t in emp.elements("title")
    ]


class TestTracking:
    def test_insert_creates_history_rows(self, archis):
        archis.db.table("employee").insert((1, "Ann", 50000, "QA", "d01"))
        archis.apply_pending()
        rows = archis.history("employee", "salary")
        assert rows == [(1, 50000, parse_date("1995-01-01"), FOREVER)]

    def test_update_closes_and_opens(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        archis.db.set_date("1995-06-01")
        emp.update_where(lambda r: r["id"] == 1, {"salary": 55000})
        archis.apply_pending()
        rows = archis.history("employee", "salary")
        assert rows == [
            (1, 50000, parse_date("1995-01-01"), parse_date("1995-05-31")),
            (1, 55000, parse_date("1995-06-01"), FOREVER),
        ]

    def test_unchanged_attributes_keep_single_row(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        archis.db.set_date("1995-06-01")
        emp.update_where(lambda r: r["id"] == 1, {"salary": 55000})
        archis.apply_pending()
        assert len(archis.history("employee", "name")) == 1

    def test_delete_closes_everything(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        archis.db.set_date("1996-01-01")
        emp.delete_where(lambda r: r["id"] == 1)
        archis.apply_pending()
        for attr in (None, "name", "salary"):
            for row in archis.history("employee", attr):
                assert row[-1] == parse_date("1995-12-31")

    def test_same_day_insert_delete_keeps_one_day_interval(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        emp.delete_where(lambda r: r["id"] == 1)
        archis.apply_pending()
        (row,) = archis.history("employee")
        assert row[1] == row[2]  # tstart == tend

    def test_key_change_rejected(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        with pytest.raises(ArchisError):
            emp.update_where(lambda r: r["id"] == 1, {"id": 2})
            archis.apply_pending()

    def test_reinsert_after_delete(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        archis.db.set_date("1996-01-01")
        emp.delete_where(lambda r: r["id"] == 1)
        archis.db.set_date("1997-01-01")
        emp.insert((1, "Ann", 60000, "QA", "d01"))
        archis.apply_pending()
        rows = archis.history("employee")
        assert len(rows) == 2
        assert rows[1][2] == FOREVER

    def test_track_existing_rows(self):
        archis = make_archis()
        archis.db.table("employee").insert((7, "Pre", 1, "T", "d"))
        # a second relation tracked after data exists
        from repro.rdb import ColumnType

        archis.db.create_table(
            "dept", [("deptno", ColumnType.INT), ("name", ColumnType.VARCHAR)],
            primary_key=("deptno",),
        )
        archis.db.table("dept").insert((1, "QA"))
        archis.track_table("dept", key="deptno")
        assert len(archis.history("dept", "name")) == 1

    def test_atlas_defers_until_apply(self, archis_atlas):
        emp = archis_atlas.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        assert archis_atlas.history("employee", "salary") == []
        applied = archis_atlas.apply_pending()
        assert applied == 1
        assert len(archis_atlas.history("employee", "salary")) == 1

    def test_db2_archives_synchronously(self, archis):
        archis.db.table("employee").insert((1, "Ann", 50000, "QA", "d01"))
        assert len(archis.history("employee", "salary")) == 1

    def test_double_track_rejected(self, archis):
        with pytest.raises(ArchisError):
            archis.track_table("employee")


class TestPublication:
    def test_bob_h_document_matches_figure_1(self, archis):
        load_bob_history(archis)
        doc = archis.publish("employee")
        assert doc.name == "employees"
        assert titles_of(doc) == [
            ("Engineer", "1995-01-01", "1995-09-30"),
            ("Sr Engineer", "1995-10-01", "1996-01-31"),
            ("TechLeader", "1996-02-01", "1996-12-31"),
        ]

    def test_salary_history_grouped(self, archis):
        load_bob_history(archis)
        doc = archis.publish("employee")
        emp = doc.elements()[0]
        salaries = [
            (s.text(), s.get("tstart"), s.get("tend"))
            for s in emp.elements("salary")
        ]
        assert salaries == [
            ("60000", "1995-01-01", "1995-05-31"),
            ("70000", "1995-06-01", "1996-12-31"),
        ]

    def test_entity_interval_covers_children(self, archis):
        load_bob_history(archis)
        emp = archis.publish("employee").elements()[0]
        assert emp.get("tstart") == "1995-01-01"
        assert emp.get("tend") == "1996-12-31"

    def test_value_equivalent_adjacent_periods_coalesced(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "QA", "d01"))
        archis.db.set_date("1995-06-01")
        emp.update_where(lambda r: r["id"] == 1, {"salary": 55000})
        archis.db.set_date("1995-09-01")
        emp.update_where(lambda r: r["id"] == 1, {"salary": 50000})
        archis.apply_pending()
        doc = archis.publish("employee")
        salaries = [s.text() for s in doc.elements()[0].elements("salary")]
        # 50000 periods are disjoint: must NOT merge
        assert salaries == ["50000", "55000", "50000"]

    def test_published_doc_parses_as_valid_xml(self, archis):
        load_bob_history(archis)
        from repro.xmlkit import parse_xml

        doc = archis.publish("employee")
        again = parse_xml(serialize(doc))
        assert again.deep_equal(doc)

    def test_publication_identical_across_profiles_and_segmentation(self):
        docs = []
        for kwargs in (
            {"profile": "db2", "umin": 0.4},
            {"profile": "atlas", "umin": 0.4},
            {"profile": "db2", "umin": None},
            {"profile": "db2", "umin": 0.2, "min_segment_rows": 4},
        ):
            archis = make_archis(**kwargs)
            load_bob_history(archis)
            docs.append(archis.publish("employee"))
        for doc in docs[1:]:
            assert doc.deep_equal(docs[0]), serialize(doc)
