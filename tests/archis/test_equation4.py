"""Paper Eq. 4: the segment-length formula.

    T_seg = N0 (1 - U_min) / (U_min R_upd - (1 - U_min) R_ins + R_del)

where N0 is the tuple count at the start of a segment and R_* are the
per-day insert/update/delete rates.  We drive an archive with constant
rates and check the measured freeze cadence against the formula, plus the
paper's qualitative claims: higher update rate ⇒ shorter segments, higher
insert rate ⇒ longer segments, higher U_min ⇒ shorter segments.
"""

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database


def drive(umin, updates_per_day, inserts_per_day=0, days=600, start_pop=60):
    """Constant-rate workload; returns measured mean segment length."""
    db = Database()
    db.set_date("1990-01-01")
    db.create_table(
        "item",
        [("id", ColumnType.INT), ("v", ColumnType.INT)],
        primary_key=("id",),
    )
    archis = ArchIS(db, config=ArchISConfig(
        profile="db2", umin=umin, min_segment_rows=1))
    archis.track_table("item")
    table = db.table("item")
    next_id = 0
    for _ in range(start_pop):
        table.insert((next_id, 0))
        next_id += 1
    for day in range(days):
        db.advance_days(1)
        for u in range(updates_per_day):
            victim = (day * 31 + u * 7) % next_id
            table.update_where(
                lambda r, k=victim: r["id"] == k, {"v": day * 100 + u}
            )
        for _ in range(inserts_per_day):
            table.insert((next_id, 0))
            next_id += 1
    segments = archis.segments.archived_segments()
    if len(segments) < 2:
        return None, archis
    lengths = [segend - segstart + 1 for _, segstart, segend in segments[1:]]
    return sum(lengths) / len(lengths), archis


def predicted_length(n0, umin, r_upd, r_ins=0.0, r_del=0.0):
    denominator = umin * r_upd - (1 - umin) * r_ins + r_del
    return n0 * (1 - umin) / denominator


def test_formula_matches_update_only_workload():
    """With updates only, Eq. 4 reduces to T = N0 (1-U)/ (U R_upd)."""
    measured, archis = drive(umin=0.5, updates_per_day=4)
    assert measured is not None
    # N0 per segment: live tuples = 60 items x 2 H-rows (key + attr)
    n0 = 60 * 2
    # only attribute updates close rows: R_upd (history closings/day) = 4
    predicted = predicted_length(n0, 0.5, r_upd=4)
    assert predicted * 0.5 < measured < predicted * 2.0, (
        f"measured {measured:.0f} days vs predicted {predicted:.0f}"
    )


def test_higher_update_rate_shortens_segments():
    slow, _ = drive(umin=0.5, updates_per_day=2)
    fast, _ = drive(umin=0.5, updates_per_day=8)
    assert slow is not None and fast is not None
    assert fast < slow


def test_higher_umin_shortens_segments():
    low, _ = drive(umin=0.3, updates_per_day=4)
    high, _ = drive(umin=0.6, updates_per_day=4)
    assert low is not None and high is not None
    assert high < low


def test_inserts_lengthen_segments():
    without, _ = drive(umin=0.5, updates_per_day=4, inserts_per_day=0, days=400)
    with_ins, _ = drive(umin=0.5, updates_per_day=4, inserts_per_day=2, days=400)
    assert without is not None
    if with_ins is None:
        # segments grew so long that fewer than two froze in the same
        # window — the strongest possible confirmation of the claim
        return
    assert with_ins >= without
