"""Failure injection: corruption and misuse surface as typed errors."""

import pytest

from repro.errors import (
    ArchisError,
    CompressionError,
    StorageError,
    UnsupportedQueryError,
)

from tests.archis.conftest import load_bob_history, make_archis
from tests.archis.test_clustering import churn


class TestCompressedArchiveCorruption:
    @pytest.fixture
    def compressed(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis, employees=10, rounds=12)
        archis.compress_archive()
        return archis

    def test_corrupt_blob_raises_compression_error(self, compressed):
        info = compressed.archive.compressed_tables["employee_salary"]
        blob_table = compressed.db.table(info.blob_table)
        first = next(iter(blob_table.rows()))
        blob_id = first[4]
        # overwrite the blob with garbage
        compressed.db.blobs.delete(blob_id)
        new_id = compressed.db.blobs.put(b"garbage not zlib")
        blob_table.update_where(
            lambda r: r["blob_id"] == blob_id, {"blob_id": new_id}
        )
        with pytest.raises(CompressionError):
            compressed.archive.read_rows("employee_salary")

    def test_truncated_blob_raises(self, compressed):
        info = compressed.archive.compressed_tables["employee_salary"]
        blob_table = compressed.db.table(info.blob_table)
        first = next(iter(blob_table.rows()))
        blob_id = first[4]
        original = compressed.db.blobs.get(blob_id)
        compressed.db.blobs.delete(blob_id)
        new_id = compressed.db.blobs.put(original[: len(original) // 2])
        blob_table.update_where(
            lambda r: r["blob_id"] == blob_id, {"blob_id": new_id}
        )
        with pytest.raises(CompressionError):
            compressed.archive.read_rows("employee_salary")

    def test_bitflip_detected(self, compressed):
        info = compressed.archive.compressed_tables["employee_salary"]
        blob_table = compressed.db.table(info.blob_table)
        first = next(iter(blob_table.rows()))
        blob_id = first[4]
        original = bytearray(compressed.db.blobs.get(blob_id))
        original[len(original) // 2] ^= 0xFF
        compressed.db.blobs.delete(blob_id)
        new_id = compressed.db.blobs.put(bytes(original))
        blob_table.update_where(
            lambda r: r["blob_id"] == blob_id, {"blob_id": new_id}
        )
        with pytest.raises((CompressionError, Exception)):
            # zlib usually raises; a rare undetected flip would decode to
            # garbage records, which the record codec then rejects
            rows = compressed.archive.read_rows("employee_salary")
            assert rows  # force evaluation

    def test_read_uncompressed_table_raises(self, compressed):
        with pytest.raises(ArchisError):
            compressed.archive.read_rows("employee_name_never_compressed")


class TestTrackerMisuse:
    def test_close_without_live_row_raises(self):
        archis = make_archis()
        writer = archis.writers["employee"]
        with pytest.raises(ArchisError):
            writer.archive_delete((42, "Ghost", 1, "T", "d"), archis.db.current_date)

    def test_untracked_relation_raises(self):
        archis = make_archis()
        with pytest.raises(ArchisError):
            archis.publish("nonexistent")
        with pytest.raises(ArchisError):
            archis.history("nonexistent")

    def test_unknown_document_raises(self):
        archis = make_archis()
        with pytest.raises(ArchisError):
            archis.relation_for_document("nope.xml")

    def test_unknown_profile_rejected(self):
        from repro.rdb import Database

        from repro.archis import ArchIS, ArchISConfig

        with pytest.raises(ArchisError):
            ArchIS(Database(), config=ArchISConfig(profile="oracle"))

    def test_one_scan_join_requires_atlas(self):
        archis = make_archis(profile="db2")
        load_bob_history(archis)
        with pytest.raises(ArchisError):
            archis.max_increase_one_scan("employee", "salary", 0, 730)


class TestTranslatorRejections:
    @pytest.fixture
    def archis(self):
        a = make_archis()
        load_bob_history(a)
        return a

    @pytest.mark.parametrize(
        "query",
        [
            # unknown document
            'for $e in doc("other.xml")/employees/employee return $e',
            # path through nonexistent attribute
            'for $x in doc("employees.xml")/employees/employee/bonus return $x',
            # descendant axis
            'for $x in doc("employees.xml")//salary return $x',
            # positional for-variable
            'for $e at $i in doc("employees.xml")/employees/employee return $i',
            # arbitrary function in return
            'for $e in doc("employees.xml")/employees/employee '
            "return concat($e/name, '!')",
        ],
    )
    def test_untranslatable_raise_cleanly(self, archis, query):
        with pytest.raises((UnsupportedQueryError, ArchisError)):
            archis.translate(query)

    def test_fallback_still_answers_descendant_query(self, archis):
        out = archis.xquery(
            'for $x in doc("employees.xml")//salary return $x'
        ).rows
        assert len(out) == 2  # Bob's two salary periods


class TestStorageMisuse:
    def test_blob_store_rejects_unknown_id(self):
        archis = make_archis()
        with pytest.raises(StorageError):
            archis.db.blobs.get(424242)

    def test_clock_cannot_go_backwards(self):
        archis = make_archis()
        archis.db.set_date("1996-01-01")
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            archis.db.set_date("1995-01-01")
