"""Sharded archives: routing, scatter-gather, persistence, recovery.

The key-partitioned coordinator must be *invisible* to correctness:
every query a single-store archive answers, a sharded archive over the
same history answers identically — while ingest routes each key's
versions to exactly one shard store, key-equality predicates prune the
exchange fan-out to that shard, and each shard recovers independently
from its own WAL.
"""

import pytest

from repro import ArchIS, ArchISConfig
from repro.archis.sharding import (
    RANGE_BLOCK,
    ShardRouter,
    shard_of,
    shard_path,
)
from repro.archis.validation import check_archive
from repro.errors import ArchisError, SqlPlanError
from repro.obs import get_registry
from repro.rdb import ColumnType, Database
from repro.xmlkit import serialize

SALARY_QUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary return $s'
)


def build(shards=None, shard_by=None, path=None, **overrides):
    db = Database(path) if path else Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    settings = dict(min_segment_rows=8, shards=shards, shard_by=shard_by)
    settings.update(overrides)
    archis = ArchIS(db, config=ArchISConfig(**settings))
    archis.track_table("employee", document_name="employees.xml")
    return archis


def churn(archis, employees=9, rounds=6):
    emp = archis.db.table("employee")
    for i in range(employees):
        emp.insert((i, f"e{i}", 1000 + i))
    for round_no in range(rounds):
        archis.db.advance_days(30)
        for i in range(employees):
            emp.update_where(
                lambda r, i=i: r["id"] == i,
                {"salary": 2000 + round_no * 100 + i},
            )
    archis.db.advance_days(15)
    archis.db.table("employee").delete_where(lambda r: r["id"] == 0)
    archis.apply_pending()


class TestShardRouter:
    def test_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for key in (0, 1, 63, 64, 1000, -5, "alice", 3.5):
                first = shard_of(key, shards)
                assert first == shard_of(key, shards)
                assert 0 <= first < shards

    def test_hash_spreads_dense_ids(self):
        counts = [0] * 4
        for key in range(1000):
            counts[shard_of(key, 4)] += 1
        assert min(counts) > 150  # no shard starves on sequential keys

    def test_range_mode_keeps_blocks_together(self):
        owner = shard_of(0, 4, "range")
        assert all(
            shard_of(k, 4, "range") == owner for k in range(RANGE_BLOCK)
        )
        assert shard_of(RANGE_BLOCK, 4, "range") != owner

    def test_single_shard_is_degenerate(self):
        router = ShardRouter(1)
        assert not router.sharded
        assert router.all_shards() == [0]
        assert router.shards_for_key("anything") == [0]

    def test_key_equality_prunes_to_one_shard(self):
        router = ShardRouter(4)
        assert router.shards_for_key(7) == [router.shard_for(7)]
        assert router.all_shards() == [0, 1, 2, 3]

    def test_shard_path_naming(self):
        assert shard_path("/x/a.db", 2) == "/x/a.db.shard2"


class TestDegenerateSingleStore:
    def test_shards_one_takes_the_single_store_path(self):
        archis = build(shards=1)
        assert archis.shard_stores == []
        assert getattr(archis.db, "shard_provider", None) is None
        churn(archis)
        plain = build(shards=None)
        churn(plain)
        assert serialize(archis.publish("employee")) == serialize(
            plain.publish("employee")
        )
        archis.close()
        plain.close()


class TestShardedEquivalence:
    @pytest.mark.parametrize("shard_by", ["hash", "range"])
    def test_queries_and_snapshots_match_single_store(self, shard_by):
        plain = build()
        sharded = build(shards=3, shard_by=shard_by)
        churn(plain)
        churn(sharded)

        a = sorted(
            serialize(e)
            for e in plain.xquery(SALARY_QUERY, allow_fallback=False).rows
        )
        b = sorted(
            serialize(e)
            for e in sharded.xquery(SALARY_QUERY, allow_fallback=False).rows
        )
        assert a == b

        for day in (
            plain.db.current_date,
            plain.db.current_date - 60,
            plain.db.current_date - 150,
        ):
            assert sorted(
                plain.snapshot_rows("employee", "salary", day).rows
            ) == sorted(
                sharded.snapshot_rows("employee", "salary", day).rows
            )
        assert sorted(plain.history("employee", "salary")) == sorted(
            sharded.history("employee", "salary")
        )
        assert serialize(plain.publish("employee")) == serialize(
            sharded.publish("employee")
        )
        plain.close()
        sharded.close()

    def test_every_key_lands_in_its_routed_shard_only(self):
        sharded = build(shards=3)
        churn(sharded)
        seen = {}
        for index, store in enumerate(sharded.shard_stores):
            for row in store.history("employee"):
                assert sharded.router.shard_for(row[0]) == index
                seen.setdefault(row[0], set()).add(index)
        assert seen, "no history archived"
        assert all(len(shards) == 1 for shards in seen.values())
        assert check_archive(sharded) == []
        sharded.close()

    def test_tracking_existing_rows_routes_them(self):
        archis = build(shards=2)
        emp_dept = [("id", ColumnType.INT), ("floor", ColumnType.INT)]
        archis.db.create_table("dept", emp_dept, primary_key=("id",))
        for i in range(6):
            archis.db.table("dept").insert((i, 10 + i))
        archis.track_table("dept")
        per_shard = [
            len(set(r[0] for r in store.history("dept")))
            for store in archis.shard_stores
        ]
        assert sum(per_shard) == 6
        assert all(count > 0 for count in per_shard)
        archis.close()

    def test_db2_profile_refuses_to_shard(self):
        db = Database()
        db.set_date("1995-01-01")
        db.create_table(
            "employee", [("id", ColumnType.INT)], primary_key=("id",)
        )
        with pytest.raises(ArchisError, match="trigger"):
            ArchIS(db, config=ArchISConfig(profile="db2", shards=2))


class TestExchange:
    def setup_method(self):
        self.archis = build(shards=4)
        churn(self.archis, employees=12)

    def teardown_method(self):
        self.archis.close()

    def query(self, sql, params=None):
        result = self.archis.db.sql(sql, params)
        plan = self.archis.db.last_plan.report().physical
        return result, plan

    def test_full_scan_fans_out_to_every_shard(self):
        _, plan = self.query(
            "SELECT t.id FROM TABLE(history_employee_salary()) "
            "AS t(id, salary, tstart, tend, segno)"
        )
        assert "Exchange history_employee_salary shards=4/4 by id" in plan

    def test_key_equality_prunes_to_one_shard(self):
        pruned = get_registry().counter("exchange.shards_pruned")
        before = pruned.value
        result, plan = self.query(
            "SELECT t.salary FROM TABLE(history_employee_salary()) "
            "AS t(id, salary, tstart, tend, segno) WHERE t.id = 5"
        )
        assert "shards=1/4 by id" in plan
        assert pruned.value - before == 3
        assert result.rows  # the pruned shard really holds key 5

    def test_param_equality_prunes_at_execution_time(self):
        for key in range(6):
            result, plan = self.query(
                "SELECT t.salary FROM TABLE(history_employee_salary()) "
                "AS t(id, salary, tstart, tend, segno) WHERE t.id = :k",
                {"k": key},
            )
            assert "shards=1/4 by id" in plan
            expected = [
                (row[1],)
                for row in self.archis.history("employee", "salary")
                if row[0] == key
            ]
            assert sorted(result.rows) == sorted(expected)

    def test_gather_is_deterministic(self):
        sql = (
            "SELECT t.id, t.tstart FROM TABLE(history_employee_salary()) "
            "AS t(id, salary, tstart, tend, segno)"
        )
        first, _ = self.query(sql)
        second, _ = self.query(sql)
        assert first.rows == second.rows

    def test_dml_through_the_coordinator_is_rejected(self):
        with pytest.raises(SqlPlanError, match="sharded history table"):
            self.archis.db.sql("DELETE FROM employee_salary")


class TestShardedPersistence:
    def test_round_trip_preserves_answers(self, tmp_path):
        path = str(tmp_path / "sharded.db")
        archis = build(shards=3, path=path)
        churn(archis)
        before = serialize(archis.publish("employee"))
        day = archis.db.current_date
        snapshot = sorted(
            archis.snapshot_rows("employee", "salary", day - 60).rows
        )
        archis.save()
        archis.close()

        again = ArchIS.open(path)
        try:
            assert len(again.shard_stores) == 3
            assert serialize(again.publish("employee")) == before
            assert (
                sorted(
                    again.snapshot_rows("employee", "salary", day - 60).rows
                )
                == snapshot
            )
            assert check_archive(again) == []
        finally:
            again.close()

    def test_crash_recovery_replays_each_shards_wal(self, tmp_path):
        path = str(tmp_path / "crash.db")
        archis = build(shards=3, path=path, batch_size=16)
        emp = archis.db.table("employee")
        for i in range(8):
            emp.insert((i, f"e{i}", 1000 + i))
        archis.apply_pending(durable=True)
        archis.save()

        # post-save updates, durably committed to the per-shard WALs by
        # the batch archiver but never checkpointed by a save
        archis.db.advance_days(30)
        for i in range(8):
            emp.update_where(
                lambda r, i=i: r["id"] == i, {"salary": 5000 + i}
            )
        archis.apply_pending(durable=True)
        update_day = archis.db.current_date
        del archis, emp  # crash: no close, no save

        recoveries = get_registry().counter("wal.recoveries")
        before = recoveries.value
        again = ArchIS.open(path)
        try:
            # every shard replayed its own WAL tail independently
            assert recoveries.value - before == 3
            assert dict(
                again.snapshot_rows("employee", "salary", update_day).rows
            ) == {i: 5000 + i for i in range(8)}
            assert check_archive(again) == []
            # recovery resurrects nothing twice: re-applying is a no-op
            assert again.apply_pending(durable=True) == 0
        finally:
            again.close()


class TestShardAwareValidation:
    def test_misrouted_row_is_reported(self):
        archis = build(shards=3)
        churn(archis, employees=6, rounds=2)
        # smuggle one key's version into a shard it does not route to
        victim = next(
            index
            for index in range(3)
            if archis.router.shard_for(9999) != index
        )
        store = archis.shard_stores[victim]
        table = store.db.table("employee_id")
        table.insert((9999, 10000, 10001, store.segments.live_segno))
        violations = check_archive(archis)
        assert any(v.check == "shard-ownership" for v in violations)
        archis.close()
