"""ArchISConfig: validation, legacy-flag resolution, plumbing into ArchIS."""

import warnings

import pytest

import repro.archis.config as config_module
from repro import ArchIS, ArchISConfig
from repro.archis.config import resolve_config
from repro.errors import ArchisError
from repro.rdb import ColumnType, Database


def make_db():
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [("id", ColumnType.INT), ("salary", ColumnType.INT)],
        primary_key=("id",),
    )
    return db


@pytest.fixture(autouse=True)
def reset_alias_warnings():
    saved = set(config_module._WARNED_ALIASES)
    config_module._WARNED_ALIASES.clear()
    yield
    config_module._WARNED_ALIASES.clear()
    config_module._WARNED_ALIASES.update(saved)


class TestValidation:
    def test_defaults_are_valid(self):
        config = ArchISConfig()
        assert config.profile == "atlas"
        assert config.umin == 0.4
        assert config.batch_size is None

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            ArchISConfig("atlas")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ArchISConfig().umin = 0.9

    @pytest.mark.parametrize(
        "bad",
        [
            {"translation_cache_size": 0},
            {"batch_size": 0},
            {"buffer_pages": 0},
            {"durability": "fsync-every-byte"},
        ],
    )
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ArchisError):
            ArchISConfig(**bad)

    def test_replace_revalidates(self):
        config = ArchISConfig()
        assert config.replace(batch_size=64).batch_size == 64
        with pytest.raises(ArchisError):
            config.replace(batch_size=-1)

    def test_as_dict_round_trips(self):
        config = ArchISConfig(umin=None, batch_size=32)
        assert ArchISConfig(**config.as_dict()) == config


class TestResolution:
    def test_config_wins_when_alone(self):
        config = ArchISConfig(umin=0.7)
        assert resolve_config(config) is config

    def test_config_plus_legacy_flag_is_a_conflict(self):
        with pytest.raises(ArchisError, match="not both"):
            resolve_config(ArchISConfig(), umin=0.7)

    def test_unset_legacy_flags_do_not_conflict(self):
        config = ArchISConfig()
        assert resolve_config(config, umin=config_module._UNSET) is config

    def test_legacy_flags_build_a_config_and_warn_once(self):
        with pytest.warns(DeprecationWarning, match="umin"):
            config = resolve_config(None, umin=0.9)
        assert config.umin == 0.9
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_config(None, umin=0.8)  # second use: silent


class TestArchISPlumbing:
    def test_archis_accepts_config(self):
        archis = ArchIS(make_db(), config=ArchISConfig(umin=None))
        assert archis.config.umin is None
        assert archis.segments.umin is None

    def test_legacy_positional_flags_still_work_with_warning(self):
        with pytest.warns(DeprecationWarning):
            archis = ArchIS(make_db(), umin=0.6)
        assert archis.config.umin == 0.6
        assert archis.segments.umin == 0.6

    def test_config_and_legacy_flags_conflict(self):
        with pytest.raises(ArchisError, match="not both"):
            ArchIS(make_db(), umin=0.6, config=ArchISConfig())

    def test_stats_reports_the_config(self):
        archis = ArchIS(make_db(), config=ArchISConfig(batch_size=17))
        archis.track_table("employee")
        assert archis.stats()["config"]["batch_size"] == 17
