"""ArchISConfig: validation, resolution, plumbing into ArchIS."""

import pytest

from repro import ArchIS, ArchISConfig
from repro.archis.config import resolve_config
from repro.errors import ArchisError
from repro.rdb import ColumnType, Database


def make_db():
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [("id", ColumnType.INT), ("salary", ColumnType.INT)],
        primary_key=("id",),
    )
    return db


class TestValidation:
    def test_defaults_are_valid(self):
        config = ArchISConfig()
        assert config.profile == "atlas"
        assert config.umin == 0.4
        assert config.batch_size is None

    def test_keyword_only(self):
        with pytest.raises(TypeError):
            ArchISConfig("atlas")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ArchISConfig().umin = 0.9

    @pytest.mark.parametrize(
        "bad",
        [
            {"translation_cache_size": 0},
            {"batch_size": 0},
            {"buffer_pages": 0},
            {"durability": "fsync-every-byte"},
            {"shards": 0},
            {"shards": -2},
            {"shard_by": "modulo"},
            {"maintenance": "eventually"},
            {"maintenance_step_rows": 0},
        ],
    )
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ArchisError):
            ArchISConfig(**bad)

    def test_replace_revalidates(self):
        config = ArchISConfig()
        assert config.replace(batch_size=64).batch_size == 64
        with pytest.raises(ArchisError):
            config.replace(batch_size=-1)

    def test_as_dict_round_trips(self):
        config = ArchISConfig(umin=None, batch_size=32)
        assert ArchISConfig(**config.as_dict()) == config


class TestResolution:
    def test_config_passes_through(self):
        config = ArchISConfig(umin=0.7)
        assert resolve_config(config) is config

    def test_none_yields_defaults(self):
        assert resolve_config(None) == ArchISConfig()

    def test_legacy_flags_are_gone(self):
        # the deprecated per-call alias folding was removed: passing a
        # legacy flag is now an ordinary TypeError, not a warning
        with pytest.raises(TypeError):
            resolve_config(None, umin=0.9)


class TestShardingConfig:
    def test_unset_shards_behave_as_one(self):
        config = ArchISConfig()
        assert config.shards is None
        assert config.shard_count == 1
        assert config.shard_mode == "hash"

    def test_explicit_shards_and_mode(self):
        config = ArchISConfig(shards=4, shard_by="range")
        assert config.shard_count == 4
        assert config.shard_mode == "range"
        assert ArchISConfig(**config.as_dict()) == config

    def test_shards_round_trip_through_persisted_catalog(self, tmp_path):
        path = str(tmp_path / "sharded.db")
        db = Database(path)
        db.set_date("1995-01-01")
        db.create_table(
            "employee",
            [("id", ColumnType.INT), ("salary", ColumnType.INT)],
            primary_key=("id",),
        )
        archis = ArchIS(db, config=ArchISConfig(shards=3, shard_by="range"))
        archis.track_table("employee")
        db.sql("INSERT INTO employee VALUES (1, 100)")
        archis.apply_pending()
        archis.save()
        archis.close()

        again = ArchIS.open(path)  # shards unset: adopt the saved layout
        try:
            assert again.config.shards == 3
            assert again.config.shard_by == "range"
            assert len(again.shard_stores) == 3
        finally:
            again.close()

    def test_mismatched_shards_on_open_is_a_versioned_error(self, tmp_path):
        path = str(tmp_path / "sharded.db")
        db = Database(path)
        db.set_date("1995-01-01")
        db.create_table(
            "employee",
            [("id", ColumnType.INT), ("salary", ColumnType.INT)],
            primary_key=("id",),
        )
        archis = ArchIS(db, config=ArchISConfig(shards=2))
        archis.track_table("employee")
        archis.save()
        archis.close()

        with pytest.raises(ArchisError, match=r"sidecar version \d+"):
            ArchIS.open(path, config=ArchISConfig(shards=4))
        with pytest.raises(ArchisError, match="shard_by"):
            ArchIS.open(path, config=ArchISConfig(shard_by="range"))
        # matching explicit layout opens fine
        again = ArchIS.open(
            path, config=ArchISConfig(shards=2, shard_by="hash")
        )
        try:
            assert len(again.shard_stores) == 2
        finally:
            again.close()


class TestArchISPlumbing:
    def test_archis_accepts_config(self):
        archis = ArchIS(make_db(), config=ArchISConfig(umin=None))
        assert archis.config.umin is None
        assert archis.segments.umin is None

    def test_legacy_flags_are_rejected(self):
        with pytest.raises(TypeError):
            ArchIS(make_db(), umin=0.6)
        with pytest.raises(TypeError):
            ArchIS(make_db(), profile="db2")

    def test_stats_reports_the_config(self):
        archis = ArchIS(make_db(), config=ArchISConfig(batch_size=17))
        archis.track_table("employee")
        assert archis.stats()["config"]["batch_size"] == 17
