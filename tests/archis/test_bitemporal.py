"""Tests for the bitemporal extension (paper Section 9)."""

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.archis.bitemporal import BitemporalArchive
from repro.errors import ArchisError
from repro.rdb import ColumnType, Database
from repro.util.timeutil import parse_date


@pytest.fixture
def store():
    db = Database()
    db.set_date("2000-01-01")
    archis = ArchIS(db, config=ArchISConfig(profile="db2", umin=None))
    return BitemporalArchive(
        archis, "contract", key="customer",
        attributes={"rate": ColumnType.INT},
    )


class TestFactMaintenance:
    def test_assert_fact(self, store):
        sid = store.assert_fact(7, {"rate": 100}, "2000-01-01", "2000-12-31")
        assert sid == 1
        facts = store.facts()
        assert len(facts) == 1
        assert facts[0].key == 7
        assert facts[0].values == (100,)

    def test_missing_value_rejected(self, store):
        with pytest.raises(ArchisError):
            store.assert_fact(7, {}, "2000-01-01")

    def test_retract_closes_transaction_time(self, store):
        sid = store.assert_fact(7, {"rate": 100}, "2000-01-01")
        store.db.set_date("2000-06-01")
        store.retract_fact(sid)
        (fact,) = store.facts()
        assert fact.transaction.end == parse_date("2000-05-31")
        assert not fact.currently_believed

    def test_retract_unknown_raises(self, store):
        with pytest.raises(ArchisError):
            store.retract_fact(99)

    def test_correct_fact_keeps_superseded_belief(self, store):
        sid = store.assert_fact(7, {"rate": 100}, "2000-01-01")
        store.db.set_date("2000-06-01")
        store.correct_fact(sid, {"rate": 120})
        facts = store.facts()
        assert len(facts) == 2
        old, new = facts
        assert old.values == (100,)
        assert old.transaction.end == parse_date("2000-05-31")
        assert new.values == (120,)
        assert new.currently_believed

    def test_correct_valid_interval(self, store):
        sid = store.assert_fact(7, {"rate": 100}, "2000-01-01", "2000-12-31")
        store.db.set_date("2000-06-01")
        store.correct_fact(sid, {"vend": "2001-06-30"})
        facts = store.facts()
        assert facts[0].valid.end == parse_date("2000-12-31")
        assert facts[1].valid.end == parse_date("2001-06-30")

    def test_correct_unknown_column(self, store):
        sid = store.assert_fact(7, {"rate": 1}, "2000-01-01")
        with pytest.raises(ArchisError):
            store.correct_fact(sid, {"bogus": 1})

    def test_key_collision_with_attribute(self):
        db = Database()
        archis = ArchIS(db, config=ArchISConfig(umin=None))
        with pytest.raises(ArchisError):
            BitemporalArchive(
                archis, "t", key="rate", attributes={"rate": ColumnType.INT}
            )


class TestBitemporalQueries:
    @pytest.fixture
    def history(self, store):
        # Jan 1: believe the rate is 100 for all of 2000.
        sid = store.assert_fact(7, {"rate": 100}, "2000-01-01", "2000-12-31")
        # Mar 1: learn it actually rose to 120 from July onward.
        store.db.set_date("2000-03-01")
        store.correct_fact(sid, {"vend": "2000-06-30"})
        store.assert_fact(7, {"rate": 120}, "2000-07-01", "2000-12-31")
        return store

    def test_valid_snapshot_current_beliefs(self, history):
        facts = history.valid_at("2000-08-15")
        assert [f.values for f in facts] == [(120,)]
        facts = history.valid_at("2000-05-15")
        assert [f.values for f in facts] == [(100,)]

    def test_bitemporal_snapshot_past_belief(self, history):
        # In February we still believed 100 held in August.
        facts = history.valid_at("2000-08-15", tt="2000-02-01")
        assert [f.values for f in facts] == [(100,)]

    def test_believed_at(self, history):
        then = history.believed_at("2000-02-01")
        assert len(then) == 1
        now = history.believed_at(history.db.current_date)
        assert len(now) == 2

    def test_valid_point_outside_any_fact(self, history):
        assert history.valid_at("1999-01-01") == []


class TestPublication:
    def test_four_timestamps(self, store):
        store.assert_fact(7, {"rate": 100}, "2000-01-01", "2000-12-31")
        doc = store.publish()
        (fact,) = doc.elements("contract")
        assert fact.get("tstart") == "2000-01-01"
        assert fact.get("tend") == "9999-12-31"
        assert fact.get("vstart") == "2000-01-01"
        assert fact.get("vend") == "2000-12-31"
        assert fact.first("customer").text() == "7"
        assert fact.first("rate").text() == "100"

    def test_xquery_transaction_axis(self, store):
        sid = store.assert_fact(7, {"rate": 100}, "2000-01-01")
        store.db.set_date("2000-06-01")
        store.retract_fact(sid)
        store.assert_fact(8, {"rate": 90}, "2000-06-01")
        out = store.xquery(
            'for $c in doc("contracts.xml")/contracts/contract'
            "[tend(.) = current-date()] return $c/customer"
        )
        assert [e.text() for e in out] == ["8"]

    def test_xquery_valid_axis(self, store):
        store.assert_fact(7, {"rate": 100}, "2000-01-01", "2000-06-30")
        store.assert_fact(7, {"rate": 120}, "2000-07-01", "2000-12-31")
        out = store.xquery(
            'for $c in doc("contracts.xml")/contracts/contract'
            '[@vstart <= "2000-08-15" and @vend >= "2000-08-15"] '
            "return $c/rate"
        )
        assert [e.text() for e in out] == ["120"]
