"""Tests for the XQuery → SQL/XML translator (paper Algorithm 1).

The strongest check is equivalence: for each query the translated SQL/XML
result must match native XQuery evaluation over the published H-views.
"""

import pytest

from repro.errors import UnsupportedQueryError
from repro.xmlkit import serialize
from repro.xquery import make_context, parse_xquery
from repro.xquery.evaluator import evaluate

from tests.archis.conftest import load_bob_history, make_archis


@pytest.fixture(params=["db2", "atlas"])
def loaded(request):
    archis = make_archis(profile=request.param)
    load_bob_history(archis)
    emp = archis.db.table("employee")
    archis.db.set_date("1997-02-01")
    emp.insert((1002, "Ann", 72000, "Sr Engineer", "d01"))
    emp.insert((1003, "Carl", 55000, "Engineer", "d03"))
    archis.db.set_date("1997-06-15")
    archis.apply_pending()
    return archis


def native(archis, query):
    docs = {"employees.xml": archis.publish("employee")}
    ctx = make_context(docs, archis.db.current_date)
    return evaluate(parse_xquery(query), ctx)


def as_texts(seq):
    return sorted(
        serialize(item) if hasattr(item, "name") else str(item) for item in seq
    )


QUERY_PROJECTION = (
    'for $t in doc("employees.xml")/employees/employee[name="Bob"]/title '
    "return $t"
)
QUERY_SNAPSHOT = (
    'for $s in doc("employees.xml")/employees/employee/salary'
    '[tstart(.) <= xs:date("1995-07-01") and tend(.) >= xs:date("1995-07-01")] '
    "return $s"
)
QUERY_SLICING = (
    'for $e in doc("employees.xml")/employees/employee'
    '[toverlaps(., telement(xs:date("1995-01-01"), xs:date("1995-12-31")))] '
    "return $e/name"
)
QUERY_HISTORY_ONE = (
    'for $s in doc("employees.xml")/employees/employee[id="1001"]/salary '
    "return $s"
)
QUERY_COUNT = 'count(doc("employees.xml")/employees/employee/salary)'
QUERY_AVG_SNAPSHOT = (
    'avg(doc("employees.xml")/employees/employee/salary'
    '[tstart(.) <= xs:date("1997-03-01") and tend(.) >= xs:date("1997-03-01")])'
)
QUERY_TAVG = (
    'let $s := doc("employees.xml")/employees/employee/salary '
    "return tavg($s)"
)


class TestTranslationSql:
    def test_projection_sql_shape(self, loaded):
        sql = loaded.translate(QUERY_PROJECTION)
        assert "XMLElement" in sql
        assert "employee_title" in sql
        assert "employee_name" in sql
        assert ".id = " in sql  # the id join

    def test_snapshot_gets_segment_restriction(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        from tests.archis.test_clustering import churn

        churn(archis)
        assert archis.segments.freeze_count >= 1
        sql = archis.translate(
            'for $s in doc("employees.xml")/employees/employee/salary'
            '[tstart(.) <= xs:date("1995-03-15") and '
            'tend(.) >= xs:date("1995-03-15")] return $s'
        )
        assert "segno" in sql

    def test_unsegmented_has_no_segment_restriction(self):
        archis = make_archis(umin=None)
        load_bob_history(archis)
        sql = archis.translate(QUERY_SNAPSHOT)
        assert "segno" not in sql

    def test_count_translates_to_aggregate(self, loaded):
        sql = loaded.translate(QUERY_COUNT)
        assert sql.lower().startswith("select count(*)")

    def test_untranslatable_raises(self, loaded):
        with pytest.raises(UnsupportedQueryError):
            loaded.translate(
                'for $e in doc("employees.xml")//salary return $e'
            )

    def test_order_by_translates(self, loaded):
        sql = loaded.translate(
            'for $e in doc("employees.xml")/employees/employee '
            "order by string($e/name) return $e/name"
        )
        assert "ORDER BY" in sql

    def test_translation_is_fast(self, loaded):
        import time

        start = time.perf_counter()
        for _ in range(100):
            loaded.translate(QUERY_PROJECTION)
        per_query = (time.perf_counter() - start) / 100
        # paper: < 0.1 ms; allow generous slack for Python
        assert per_query < 0.05


class TestEquivalenceWithNative:
    """Translated SQL/XML results == native evaluation on published views."""

    @pytest.mark.parametrize(
        "query",
        [
            QUERY_PROJECTION,
            QUERY_SNAPSHOT,
            QUERY_SLICING,
            QUERY_HISTORY_ONE,
        ],
        ids=["projection", "snapshot", "slicing", "history-one"],
    )
    def test_element_queries(self, loaded, query):
        translated = loaded.xquery(query, allow_fallback=False).rows
        reference = native(loaded, query)
        assert as_texts(translated) == as_texts(reference)

    def test_count(self, loaded):
        assert loaded.xquery(QUERY_COUNT, allow_fallback=False).rows == native(
            loaded, QUERY_COUNT
        )

    def test_avg_snapshot(self, loaded):
        got = loaded.xquery(QUERY_AVG_SNAPSHOT, allow_fallback=False).rows
        want = native(loaded, QUERY_AVG_SNAPSHOT)
        assert abs(got[0] - want[0]) < 1e-9

    def test_tavg(self, loaded):
        got = loaded.xquery(QUERY_TAVG, allow_fallback=False).rows
        want = native(loaded, QUERY_TAVG)
        assert as_texts(got) == as_texts(want)

    def test_temporal_join_max(self, loaded):
        query = (
            'max(for $e in doc("employees.xml")/employees/employee '
            "for $a in $e/salary for $b in $e/salary "
            "where tstart($b) > tstart($a) return $b - $a)"
        )
        got = loaded.xquery(query, allow_fallback=False).rows
        want = native(loaded, query)
        assert got == want
        assert got[0] == 10000  # Bob: 70000 - 60000

    def test_order_by_equivalent_to_native(self, loaded):
        query = (
            'for $e in doc("employees.xml")/employees/employee '
            "order by string($e/name) return $e/name"
        )
        translated = loaded.xquery(query, allow_fallback=False).rows
        reference = native(loaded, query)
        assert [e.text() for e in translated] == [e.text() for e in reference]
        assert [e.text() for e in translated] == ["Ann", "Bob", "Carl"]

    def test_order_by_descending(self, loaded):
        query = (
            'for $s in doc("employees.xml")/employees/employee[id="1001"]'
            "/salary order by tstart($s) descending return $s"
        )
        out = loaded.xquery(query, allow_fallback=False).rows
        starts = [e.get("tstart") for e in out]
        assert starts == sorted(starts, reverse=True)

    def test_query7_since_translates(self, loaded):
        """Paper QUERY 7 (A since B) is in the translatable subset."""
        query = (
            'for $e in doc("employees.xml")/employees/employee'
            ' let $m:= $e/title[.="Sr Engineer" and tend(.)=current-date()]'
            ' let $d:=$e/deptno[.="d01" and tcontains($m, .)]'
            " where not(empty($d)) and not(empty($m))"
            " return <employee>{$e/id, $e/name}</employee>"
        )
        translated = loaded.xquery(query, allow_fallback=False).rows
        reference = native(loaded, query)
        assert as_texts(translated) == as_texts(reference)
        assert len(translated) == 1
        assert translated[0].first("name").text() == "Ann"

    def test_fallback_answers_untranslatable(self, loaded):
        query = (
            'for $e in doc("employees.xml")/employees/employee '
            "where every $s in $e/salary satisfies $s > 50000 "
            "return $e/name"
        )
        out = loaded.xquery(query, allow_fallback=True).rows
        assert len(out) >= 1

    def test_no_fallback_raises(self, loaded):
        with pytest.raises(UnsupportedQueryError):
            loaded.xquery(
                'for $e in doc("employees.xml")/employees/employee '
                "where every $s in $e/salary satisfies $s > 50000 "
                "return $e/name",
                allow_fallback=False,
            )


class TestEquivalenceUnderStorageVariants:
    """The same query must return identical results on unsegmented,
    segmented and compressed storage (and both profiles)."""

    def make_variants(self):
        from tests.archis.test_clustering import churn

        variants = {}
        for name, kwargs in (
            ("unsegmented", {"umin": None}),
            ("segmented", {"umin": 0.4, "min_segment_rows": 8}),
            ("compressed", {"umin": 0.4, "min_segment_rows": 8}),
            ("atlas", {"profile": "atlas", "umin": 0.4, "min_segment_rows": 8}),
        ):
            archis = make_archis(**{"profile": "db2", **kwargs})
            churn(archis, employees=8, rounds=12)
            archis.apply_pending()
            if name == "compressed":
                archis.compress_archive()
            variants[name] = archis
        return variants

    @pytest.mark.parametrize(
        "query",
        [
            'for $s in doc("employees.xml")/employees/employee/salary'
            '[tstart(.) <= xs:date("1995-06-15") and '
            'tend(.) >= xs:date("1995-06-15")] return $s',
            'count(doc("employees.xml")/employees/employee/salary)',
            'for $s in doc("employees.xml")/employees/employee[id="3"]/salary '
            "return $s",
        ],
        ids=["snapshot", "history-count", "history-one"],
    )
    def test_all_variants_agree(self, query):
        variants = self.make_variants()
        results = {
            name: as_texts(archis.xquery(query, allow_fallback=False).rows)
            for name, archis in variants.items()
        }
        baseline = results.pop("unsegmented")
        for name, got in results.items():
            assert got == baseline, f"{name} diverged"


class TestDistinctCount:
    """count(distinct-values(...)) maps to COUNT(DISTINCT ...): the
    paper's exact Q5 semantics (count employees, not salary versions)."""

    def test_translation_shape(self, loaded):
        sql = loaded.translate(
            'count(distinct-values(doc("employees.xml")/employees/employee'
            '[salary[. > 50000]]/id))'
        )
        assert "count(DISTINCT" in sql

    def test_equivalence_with_native(self, loaded):
        query = (
            'count(distinct-values(doc("employees.xml")/employees/employee'
            '[salary[toverlaps(., telement(xs:date("1995-01-01"), '
            'xs:date("1996-12-31"))) and . > 50000]]/id))'
        )
        got = loaded.xquery(query, allow_fallback=False).rows
        want = native(loaded, query)
        assert got == want

    def test_distinct_deduplicates_multi_version_matches(self, loaded):
        # Bob has two salary versions > 50000: versions count 2, employees 1
        versions = loaded.xquery(
            'count(doc("employees.xml")/employees/employee[name="Bob"]'
            "/salary[. > 50000])",
            allow_fallback=False,
        )
        employees = loaded.xquery(
            'count(distinct-values(doc("employees.xml")/employees/employee'
            '[name="Bob"][salary[. > 50000]]/id))',
            allow_fallback=False,
        )
        assert versions.rows == [2]
        assert employees.rows == [1]
