"""End-to-end temporal SQL on the archive: ArchIS.sql / explain_sql.

The SQL-native FOR SYSTEM_TIME path must agree with the engine's other
time-travel surfaces (``snapshot_rows``, the ``history_`` functions) on
single stores, segmented stores and sharded coordinators — and the plans
must show the paper's access-path work (segment restriction, Exchange
shard pruning) actually firing.
"""

import pytest

from repro import ArchIS, ArchISConfig
from repro.obs import get_registry
from repro.rdb import ColumnType, Database
from repro.util.timeutil import parse_date


def build(shards=None, shard_by=None, **overrides):
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    settings = dict(min_segment_rows=8, shards=shards, shard_by=shard_by)
    settings.update(overrides)
    archis = ArchIS(db, config=ArchISConfig(**settings))
    archis.track_table("employee", document_name="employees.xml")
    return archis


def churn(archis, employees=9, rounds=6):
    emp = archis.db.table("employee")
    for i in range(employees):
        emp.insert((i, f"e{i}", 1000 + i))
    for round_no in range(rounds):
        archis.db.advance_days(30)
        for i in range(employees):
            emp.update_where(
                lambda r, i=i: r["id"] == i,
                {"salary": 2000 + round_no * 100 + i},
            )
    archis.apply_pending()


AS_OF = "1995-02-15"


def as_of_sql(date=AS_OF):
    return (
        "SELECT t.id, t.salary FROM employee_salary t "
        f"FOR SYSTEM_TIME AS OF DATE '{date}' ORDER BY t.id"
    )


class TestAsOfAgainstSnapshots:
    @pytest.mark.parametrize("shards", [None, 4])
    def test_matches_snapshot_rows(self, shards):
        archis = build(shards=shards, shard_by="hash" if shards else None)
        churn(archis)
        got = archis.sql(as_of_sql()).rows
        want = sorted(
            (row[0], row[1])
            for row in archis.snapshot_rows(
                "employee", "salary", parse_date(AS_OF)
            ).rows
        )
        assert [tuple(r) for r in got] == want

    def test_segmented_plan_restricts_segments(self):
        archis = build()
        churn(archis)
        explained = archis.explain_sql(as_of_sql())
        assert explained.result_count == 9
        assert any(
            "segment-restriction" in rule for rule in explained.plan.rules
        )

    def test_non_select_delegates_to_the_database(self):
        archis = build()
        churn(archis)
        result = archis.sql("SELECT count(*) FROM employee")
        assert result.rows == [(9,)]


class TestShardedTemporalSql:
    def test_key_equality_prunes_to_one_shard(self):
        archis = build(shards=4, shard_by="hash")
        churn(archis)
        registry = get_registry()
        hit = registry.histogram("exchange.shards_hit")
        before = hit.count
        result = archis.sql(
            "SELECT t.id, t.salary FROM employee_salary t "
            f"FOR SYSTEM_TIME AS OF DATE '{AS_OF}' WHERE t.id = 3"
        )
        assert [tuple(r) for r in result.rows] == [(3, 2003)]
        assert hit.count == before + 1
        pruned = registry.counter("exchange.shards_pruned")
        assert pruned.value > 0

    def test_windowed_scan_agrees_with_unsharded(self):
        sharded = build(shards=4, shard_by="hash")
        churn(sharded)
        plain = build()
        churn(plain)
        window = (
            "SELECT t.id, t.salary, t.tstart, t.tend FROM employee_salary t "
            "FOR SYSTEM_TIME FROM DATE '1995-02-01' TO DATE '1995-04-01' "
            "ORDER BY t.id, t.tstart"
        )
        assert sharded.sql(window).rows == plain.sql(window).rows


class TestTemporalOperatorsOnArchive:
    def test_temporal_join_across_attributes(self):
        archis = build()
        churn(archis)
        rows = archis.sql(
            "SELECT a.id, a.salary, b.name, a.tstart, a.tend "
            "FROM employee_salary a TEMPORAL JOIN employee_name b "
            "ON a.id = b.id WHERE a.id = 1 ORDER BY a.tstart"
        ).rows
        assert rows  # every salary version pairs with the stable name
        assert all(row[2] == "e1" for row in rows)
        starts = [row[3] for row in rows]
        assert starts == sorted(starts)

    def test_tavg_matches_xquery_temporal_aggregate(self):
        archis = build()
        churn(archis)
        sql_rows = archis.sql(
            "SELECT tavg(t.salary) FROM employee_salary t"
        ).rows
        xml = archis.xquery(
            'for $s in doc("employees.xml")/employees/employee/salary '
            "return tavg($s)"
        ).rows
        assert len(sql_rows) == len(xml)
        from repro.util.timeutil import parse_date as pd

        for (value, tstart, tend), element in zip(sql_rows, xml):
            assert float(element.children[0].value) == pytest.approx(value)
            assert pd(element.get("tstart")) == tstart

    def test_temporal_metrics_flow(self):
        archis = build()
        churn(archis)
        registry = get_registry()
        queries = registry.counter("temporal.queries")
        before = queries.value
        archis.sql(as_of_sql())
        assert queries.value == before + 1
