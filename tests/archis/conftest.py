"""Shared fixtures: a small current database with a tracked employee table."""

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database


def make_archis(profile="db2", umin=0.4, min_segment_rows=8, **kwargs):
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
            ("title", ColumnType.VARCHAR),
            ("deptno", ColumnType.VARCHAR),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(db, config=ArchISConfig(
        profile=profile, umin=umin,
        min_segment_rows=min_segment_rows, **kwargs))
    archis.track_table("employee", document_name="employees.xml")
    return archis


def load_bob_history(archis):
    """Replay the paper's Table 1 history for employee Bob (id 1001)."""
    db = archis.db
    emp = db.table("employee")
    emp.insert((1001, "Bob", 60000, "Engineer", "d01"))
    db.set_date("1995-06-01")
    emp.update_where(lambda r: r["id"] == 1001, {"salary": 70000})
    db.set_date("1995-10-01")
    emp.update_where(
        lambda r: r["id"] == 1001, {"title": "Sr Engineer", "deptno": "d02"}
    )
    db.set_date("1996-02-01")
    emp.update_where(lambda r: r["id"] == 1001, {"title": "TechLeader"})
    db.set_date("1997-01-01")
    emp.delete_where(lambda r: r["id"] == 1001)
    archis.apply_pending()


@pytest.fixture
def archis():
    return make_archis()


@pytest.fixture
def archis_atlas():
    return make_archis(profile="atlas")


@pytest.fixture
def archis_unsegmented():
    return make_archis(umin=None)
