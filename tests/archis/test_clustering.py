"""Tests for usefulness-based segment clustering (paper Section 6)."""

import pytest

from repro.errors import ArchisError
from repro.archis.clustering import SegmentManager
from repro.util.timeutil import parse_date

from tests.archis.conftest import make_archis


def churn(archis, employees=10, rounds=12):
    """Insert employees then update salaries repeatedly to force freezes."""
    emp = archis.db.table("employee")
    for i in range(employees):
        emp.insert((i, f"e{i}", 1000 + i, "T", "d01"))
    for round_no in range(rounds):
        archis.db.advance_days(30)
        for i in range(employees):
            emp.update_where(
                lambda r, i=i: r["id"] == i, {"salary": 2000 + round_no * 100 + i}
            )
    archis.apply_pending()


class TestUsefulness:
    def test_usefulness_starts_at_one(self, archis):
        assert archis.segments.stats.usefulness == 1.0

    def test_usefulness_drops_on_updates(self, archis):
        emp = archis.db.table("employee")
        emp.insert((1, "A", 1, "T", "d"))
        archis.db.advance_days(1)
        emp.update_where(lambda r: r["id"] == 1, {"salary": 2})
        stats = archis.segments.stats
        assert stats.usefulness < 1.0

    def test_freeze_triggered_below_umin(self, archis):
        churn(archis)
        assert archis.segments.freeze_count >= 1
        assert archis.segments.segment_count() >= 2

    def test_no_freeze_when_unsegmented(self, archis_unsegmented):
        churn(archis_unsegmented)
        assert archis_unsegmented.segments.freeze_count == 0
        assert archis_unsegmented.segments.segment_count() == 1

    def test_lower_umin_fewer_segments(self):
        low = make_archis(umin=0.2, min_segment_rows=8)
        high = make_archis(umin=0.6, min_segment_rows=8)
        churn(low)
        churn(high)
        assert high.segments.freeze_count >= low.segments.freeze_count

    def test_invalid_umin(self):
        from repro.rdb import Database

        with pytest.raises(ArchisError):
            SegmentManager(Database(), umin=1.5)

    def test_freeze_requires_segmentation(self, archis_unsegmented):
        with pytest.raises(ArchisError):
            archis_unsegmented.segments.freeze()


class TestSegmentInvariants:
    def test_segment_table_intervals_are_contiguous(self, archis):
        churn(archis)
        segments = archis.segments.archived_segments()
        for (s1, _, end1), (s2, start2, _) in zip(segments, segments[1:]):
            assert s2 == s1 + 1
            assert start2 == end1 + 1

    def test_section_6_1_covering_conditions(self, archis):
        """Every tuple in a frozen segment satisfies tstart <= segend and
        tend >= segstart (paper equations 1-2)."""
        churn(archis)
        periods = dict(
            (segno, (segstart, segend))
            for segno, segstart, segend in archis.segments.archived_segments()
        )
        table = archis.db.table("employee_salary")
        for row in table.rows():
            rid, salary, tstart, tend, segno = row
            if segno not in periods:
                continue  # live segment
            segstart, segend = periods[segno]
            assert tstart <= segend
            assert tend >= segstart

    def test_frozen_segments_sorted_by_id(self, archis):
        churn(archis)
        table = archis.db.table("employee_salary")
        by_segment = {}
        for row in table.rows():
            by_segment.setdefault(row[4], []).append(row[0])
        for segno, ids in by_segment.items():
            if segno == archis.segments.live_segno:
                continue
            assert ids == sorted(ids), f"segment {segno} not clustered"

    def test_live_segment_holds_only_current_rows_after_freeze(self, archis):
        churn(archis)
        table = archis.db.table("employee_salary")
        live = archis.segments.live_segno
        # every id's live row appears exactly once in the live segment
        live_rows = [r for r in table.rows() if r[4] == live]
        assert live_rows
        for row in live_rows:
            # rows copied into a fresh live segment are current by design,
            # then may be closed by later updates
            assert row[2] <= row[3]

    def test_storage_bound_equation_3(self, archis):
        """N_seg / N_noseg <= 1 / (1 - U_min) (paper Eq. 3)."""
        churn(archis, employees=12, rounds=8)
        unsegmented = make_archis(umin=None)
        churn(unsegmented, employees=12, rounds=8)
        n_seg = archis.db.table("employee_salary").row_count
        n_noseg = unsegmented.db.table("employee_salary").row_count
        umin = archis.segments.umin
        assert n_seg / n_noseg <= 1.0 / (1.0 - umin) + 0.25  # small slack

    def test_segment_for_date(self, archis):
        churn(archis)
        (first_segno, segstart, segend) = archis.segments.archived_segments()[0]
        assert archis.segments.segment_for(segstart) == first_segno
        assert archis.segments.segment_for(segend) == first_segno
        future = parse_date("2050-01-01")
        assert archis.segments.segment_for(future) == archis.segments.live_segno

    def test_segments_overlapping_window(self, archis):
        churn(archis)
        segments = archis.segments.archived_segments()
        first, last = segments[0], segments[-1]
        window = archis.segments.segments_overlapping(first[1], last[2])
        assert set(s for s, _, _ in segments).issubset(window)

    def test_history_dedup_after_freezes(self, archis):
        """history_rows deduplicates the freeze redundancy."""
        churn(archis)
        unsegmented = make_archis(umin=None)
        churn(unsegmented)
        seg_history = archis.history("employee", "salary")
        noseg_history = unsegmented.history("employee", "salary")
        assert seg_history == noseg_history

    def test_snapshot_rows_equal_unsegmented(self, archis):
        churn(archis)
        unsegmented = make_archis(umin=None)
        churn(unsegmented)
        date = parse_date("1995-03-15")
        a = sorted(archis.snapshot_rows("employee", "salary", date).rows)
        b = sorted(unsegmented.snapshot_rows("employee", "salary", date).rows)
        assert a == b
        assert a  # non-empty: the window covers live employees
