"""Crash-recovery matrix for archive saves.

A tracked, churned, compressed archive is saved with a crash injected at
every write/fsync boundary the save crosses.  After each crash the
archive is reopened through normal recovery and must present either the
complete pre-save or the complete post-save history — never an error,
never a mix, never a truncated sidecar.
"""

import glob
import json
import os
from collections import Counter

import pytest

from repro.archis import ArchIS
from repro.archis.validation import check_archive
from repro.errors import ArchisError, CatalogError
from repro.rdb import ColumnType, Database
from repro.storage import InjectedCrash, get_crash_points
from repro.xmlkit import serialize

from tests.archis.test_archive_persistence import build
from tests.archis.test_clustering import churn


@pytest.fixture(autouse=True)
def disarm_crash_points():
    yield
    get_crash_points().reset()


def churn_again(archis, rounds=3):
    """Second churn phase: updates, one insert, one delete."""
    emp = archis.db.table("employee")
    for round_no in range(rounds):
        archis.db.advance_days(30)
        for i in range(6):
            emp.update_where(
                lambda r, i=i: r["id"] == i,
                {"salary": 9000 + round_no * 100 + i},
            )
    archis.db.advance_days(10)
    emp.insert((100, "late-hire", 5000, "T", "d02"))
    emp.delete_where(lambda r: r["id"] == 0)
    archis.apply_pending()


def build_saved(path):
    """A churned archive with one completed save (the pre-state)."""
    archis = build(path)
    churn(archis, employees=6, rounds=6)
    archis.save()
    return archis


def advance_to_post(archis):
    """More history + BlockZIP compression, not yet saved."""
    churn_again(archis)
    archis.compress_archive()


def assert_no_stray_files(db_path):
    directory = os.path.dirname(db_path)
    strays = glob.glob(os.path.join(directory, "*.tmp"))
    assert strays == [], f"crashed save left tmp files behind: {strays}"
    wal_path = db_path + ".wal"
    if os.path.exists(wal_path):
        assert os.path.getsize(wal_path) == 0, "recovery left WAL frames behind"


@pytest.fixture(scope="module")
def expectations(tmp_path_factory):
    """Deterministic pre/post publications + the crash-point matrix."""
    path = str(tmp_path_factory.mktemp("control") / "archive.db")
    archis = build_saved(path)
    pre = serialize(archis.publish("employee"))
    advance_to_post(archis)
    post = serialize(archis.publish("employee"))
    with get_crash_points().recording() as fired:
        archis.save()
    archis.db.close()
    counts = Counter(fired)
    assert counts, "the save crossed no crash points"
    # every point name, at its first, middle and last occurrence
    matrix = sorted(
        {
            (name, occurrence)
            for name, total in counts.items()
            for occurrence in {1, total // 2 + 1, total}
        }
    )
    return pre, post, matrix


class TestCrashMatrix:
    def test_every_crash_point_yields_pre_or_post_state(
        self, tmp_path, expectations
    ):
        pre, post, matrix = expectations
        crash_points = get_crash_points()
        outcomes = Counter()
        for index, (point, occurrence) in enumerate(matrix):
            path = str(tmp_path / f"m{index}.db")
            archis = build_saved(path)
            advance_to_post(archis)
            with pytest.raises(InjectedCrash):
                with crash_points.crash_at(point, occurrence):
                    archis.save()
            # whatever instant the crash hit, on-disk sidecars parse
            for suffix in (".catalog.json", ".archis.json"):
                sidecar = path + suffix
                if os.path.exists(sidecar):
                    with open(sidecar, encoding="utf-8") as handle:
                        json.load(handle)
            again = ArchIS.open(path)
            published = serialize(again.publish("employee"))
            assert published in (pre, post), (
                f"corrupt archive after crash at {point}#{occurrence}"
            )
            assert check_archive(again) == [], (
                f"invariant violations after crash at {point}#{occurrence}"
            )
            assert_no_stray_files(path)
            outcomes[published == post] += 1
            again.db.close()
        # the matrix must exercise both sides of the commit point
        assert outcomes[False] > 0, "no crash point preserved the pre-state"
        assert outcomes[True] > 0, "no crash point reached the post-state"

    def test_crash_during_page_churn_rolls_back_to_last_save(
        self, tmp_path, expectations
    ):
        pre, _, _ = expectations
        path = str(tmp_path / "churn.db")
        archis = build_saved(path)
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("wal.frame.torn", 10):
                advance_to_post(archis)
                archis.save()
        again = ArchIS.open(path)
        assert serialize(again.publish("employee")) == pre
        assert_no_stray_files(path)
        again.db.close()

    def test_snapshot_query_consistent_after_mid_checkpoint_crash(
        self, tmp_path
    ):
        path = str(tmp_path / "snap.db")
        archis = build_saved(path)
        pre_rows = sorted(archis.snapshot_rows("employee", "salary", 9150).rows)
        advance_to_post(archis)
        post_rows = sorted(archis.snapshot_rows("employee", "salary", 9150).rows)
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("wal.checkpoint.page_applied", 3):
                archis.save()
        again = ArchIS.open(path)
        rows = sorted(again.snapshot_rows("employee", "salary", 9150).rows)
        assert rows in (pre_rows, post_rows)
        again.db.close()


class TestRecoveryPlumbing:
    def test_recovery_counts_metrics(self, tmp_path):
        from repro.obs.metrics import get_registry

        path = str(tmp_path / "metrics.db")
        archis = build_saved(path)
        churn_again(archis, rounds=1)
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("wal.checkpoint.begin"):
                archis.save()
        recoveries = get_registry().counter("wal.recoveries")
        before = recoveries.value
        again = ArchIS.open(path)
        assert recoveries.value == before + 1
        assert again.stats()["durability"]["mode"] == "wal"
        assert again.stats()["durability"]["wal_recoveries"] >= 1
        again.db.close()

    def test_recover_tool_reports_and_verifies(self, tmp_path, capsys):
        from repro.tools import main

        path = str(tmp_path / "tool.db")
        archis = build_saved(path)
        churn_again(archis, rounds=1)
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("wal.checkpoint.page_applied", 2):
                archis.save()
        assert main(["recover", path]) == 0
        out = capsys.readouterr().out
        assert "replayed a committed save" in out
        assert "archive:        ok" in out
        # second run finds a clean log
        assert main(["recover", path]) == 0
        assert "nothing to replay" in capsys.readouterr().out

    def test_archis_exposes_durability(self, tmp_path):
        path = str(tmp_path / "durable.db")
        archis = build_saved(path)
        assert archis.durability == "wal"
        archis.db.close()

    def test_durability_none_sidecar_still_atomic(self, tmp_path):
        path = str(tmp_path / "plain.db")
        db = Database(path, durability="none")
        db.set_date("1995-01-01")
        db.create_table("t", [("id", ColumnType.INT)], primary_key=("id",))
        db.save()
        with open(path + ".catalog.json", encoding="utf-8") as handle:
            old_payload = handle.read()
        db.table("t").insert((1,))
        with pytest.raises(InjectedCrash):
            with get_crash_points().crash_at("atomic.tmp_written"):
                db.save()
        # the crash hit after the tmp write but before the rename: the old
        # sidecar must be byte-identical, and still parse
        with open(path + ".catalog.json", encoding="utf-8") as handle:
            assert handle.read() == old_payload
        reopened = Database.open(path, durability="none")
        assert reopened.tables() == ["t"]
        reopened.close()


class TestSidecarVersioning:
    def test_catalog_version_error_names_version_and_path(self, tmp_path):
        path = str(tmp_path / "vers.db")
        archis = build_saved(path)
        archis.db.close()
        sidecar = path + ".catalog.json"
        with open(sidecar, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["version"] = 99
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(CatalogError) as excinfo:
            Database.open(path)
        assert "99" in str(excinfo.value)
        assert sidecar in str(excinfo.value)

    def test_archive_version_error_names_version_and_path(self, tmp_path):
        path = str(tmp_path / "vers2.db")
        archis = build_saved(path)
        archis.db.close()
        sidecar = path + ".archis.json"
        with open(sidecar, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["version"] = 7
        with open(sidecar, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ArchisError) as excinfo:
            ArchIS.open(path)
        assert "7" in str(excinfo.value)
        assert sidecar in str(excinfo.value)

    def test_savers_share_one_version_constant(self, tmp_path):
        from repro.storage import SIDECAR_VERSION

        path = str(tmp_path / "shared.db")
        archis = build_saved(path)
        archis.db.close()
        for suffix in (".catalog.json", ".archis.json"):
            with open(path + suffix, encoding="utf-8") as handle:
                assert json.load(handle)["version"] == SIDECAR_VERSION
