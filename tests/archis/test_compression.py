"""Tests for BlockZIP (Algorithm 2) and BLOB-backed compressed segments."""

import pytest

from repro.errors import ArchisError, CompressionError
from repro.archis.compression import (
    DEFAULT_BLOCK_SIZE,
    compress_records,
    compression_ratio,
    decompress_block,
    iter_all_rows,
)
from repro.util.timeutil import parse_date

from tests.archis.conftest import make_archis
from tests.archis.test_clustering import churn


def sample_rows(n=2000):
    return [
        (100000 + i, 40000 + (i % 50) * 10, 6000 + i, 6400 + i, 1 + i // 700)
        for i in range(n)
    ]


class TestBlockZip:
    def test_roundtrip_all_rows(self):
        rows = sample_rows()
        blocks = compress_records(rows)
        assert list(iter_all_rows(blocks)) == rows

    def test_empty_input(self):
        assert compress_records([]) == []

    def test_single_row(self):
        blocks = compress_records([(1, "x", 2)])
        assert len(blocks) == 1
        assert decompress_block(blocks[0]) == [(1, "x", 2)]

    def test_sids_are_contiguous(self):
        blocks = compress_records(sample_rows())
        assert blocks[0].start_sid == 0
        for left, right in zip(blocks, blocks[1:]):
            assert right.start_sid == left.end_sid + 1
        assert blocks[-1].end_sid == 1999

    def test_blocks_near_target_size(self):
        blocks = compress_records(sample_rows(), block_size=DEFAULT_BLOCK_SIZE)
        assert len(blocks) > 1
        for block in blocks[:-1]:
            assert len(block.data) <= 2 * DEFAULT_BLOCK_SIZE

    def test_block_granular_access(self):
        """Reading one block yields exactly its sid range: the BlockZIP
        property that makes snapshot queries cheap (Section 8.1)."""
        rows = sample_rows()
        blocks = compress_records(rows)
        middle = blocks[len(blocks) // 2]
        got = decompress_block(middle)
        assert got == rows[middle.start_sid : middle.end_sid + 1]

    def test_compression_actually_compresses(self):
        rows = sample_rows(5000)
        blocks = compress_records(rows)
        raw = sum(len(str(r)) for r in rows)  # rough raw size
        assert compression_ratio(blocks, raw) < 0.5

    def test_corrupt_block_raises(self):
        with pytest.raises(CompressionError):
            decompress_block(b"not zlib data")

    def test_custom_block_size(self):
        small = compress_records(sample_rows(), block_size=1000)
        large = compress_records(sample_rows(), block_size=16000)
        assert len(small) > len(large)


class TestCompressedArchive:
    @pytest.fixture
    def frozen_archis(self):
        archis = make_archis(umin=0.4, min_segment_rows=8)
        churn(archis, employees=12, rounds=12)
        assert archis.segments.freeze_count >= 1
        return archis

    def test_compress_moves_frozen_rows(self, frozen_archis):
        table = frozen_archis.db.table("employee_salary")
        live = frozen_archis.segments.live_segno
        frozen_before = sum(1 for r in table.rows() if r[4] != live)
        info = frozen_archis.archive.compress_table("employee_salary")
        assert info.rows_compressed == frozen_before
        assert all(r[4] == live for r in table.rows())

    def test_live_segment_never_compressed(self, frozen_archis):
        frozen_archis.archive.compress_table("employee_salary")
        table = frozen_archis.db.table("employee_salary")
        assert table.row_count > 0  # live rows stay in the heap

    def test_read_rows_roundtrip(self, frozen_archis):
        table = frozen_archis.db.table("employee_salary")
        live = frozen_archis.segments.live_segno
        frozen_rows = sorted(
            r for r in table.rows() if r[4] != live
        )
        frozen_archis.archive.compress_table("employee_salary")
        got = sorted(frozen_archis.archive.read_rows("employee_salary"))
        assert got == frozen_rows

    def test_segment_restricted_read_touches_fewer_blocks(self, frozen_archis):
        frozen_archis.archive.compress_table("employee_salary")
        segments = [s for s, _, _ in frozen_archis.segments.archived_segments()]
        one = frozen_archis.archive.blocks_touched("employee_salary", segments[:1])
        all_segs = frozen_archis.archive.blocks_touched("employee_salary", segments)
        assert one <= all_segs

    def test_segment_restricted_rows_match_filter(self, frozen_archis):
        table = frozen_archis.db.table("employee_salary")
        live = frozen_archis.segments.live_segno
        target = frozen_archis.segments.archived_segments()[0][0]
        expected = sorted(
            r for r in table.rows() if r[4] == target
        )
        frozen_archis.archive.compress_table("employee_salary")
        got = sorted(
            r
            for r in frozen_archis.archive.read_rows("employee_salary", [target])
            if r[4] == target
        )
        assert got == expected

    def test_unzip_table_function_via_sql(self, frozen_archis):
        frozen_archis.archive.compress_table("employee_salary")
        result = frozen_archis.db.sql(
            "SELECT count(*) FROM TABLE(unzip_employee_salary()) "
            "AS z(id, salary, tstart, tend, segno)"
        )
        assert result.scalar() > 0

    def test_double_compress_rejected(self, frozen_archis):
        frozen_archis.archive.compress_table("employee_salary")
        with pytest.raises(ArchisError):
            frozen_archis.archive.compress_table("employee_salary")

    def test_compress_archive_all_tables(self, frozen_archis):
        report = frozen_archis.compress_archive()
        assert "employee_salary" in report
        assert "employee_id" in report

    def test_history_identical_after_compression(self, frozen_archis):
        before = frozen_archis.history("employee", "salary")
        frozen_archis.compress_archive()
        history_fn = frozen_archis.db.table_function("history_employee_salary")
        after = [(r[0], r[1], r[2], r[3]) for r in history_fn()]
        assert after == [tuple(r) for r in before]

    def test_snapshot_identical_after_compression(self, frozen_archis):
        date = parse_date("1995-03-15")
        before = sorted(frozen_archis.snapshot_rows("employee", "salary", date).rows)
        frozen_archis.compress_archive()
        after = sorted(frozen_archis.snapshot_rows("employee", "salary", date).rows)
        assert before == after

    def test_storage_shrinks_with_compression(self, frozen_archis):
        before = frozen_archis.storage_bytes()
        frozen_archis.compress_archive()
        after = frozen_archis.storage_bytes()
        assert after < before
