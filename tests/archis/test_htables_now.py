"""Tests for H-table schema generation and 'now' handling."""

import pytest

from repro.archis.htables import (
    RELATIONS_TABLE,
    SEGMENT_TABLE,
    TrackedRelation,
    create_global_tables,
    create_htables,
)
from repro.errors import ArchisError
from repro.rdb import ColumnType, Database
from repro.util.timeutil import FOREVER

from tests.archis.conftest import make_archis


@pytest.fixture
def relation():
    return TrackedRelation(
        "employee", "id",
        {"name": ColumnType.VARCHAR, "salary": ColumnType.INT},
    )


class TestSchemas:
    def test_table_names(self, relation):
        assert relation.key_table == "employee_id"
        assert relation.attribute_table("salary") == "employee_salary"
        assert relation.all_tables() == [
            "employee_id", "employee_name", "employee_salary",
        ]

    def test_unknown_attribute_raises(self, relation):
        with pytest.raises(ArchisError):
            relation.attribute_table("bonus")

    def test_create_htables_segmented_indexes(self, relation):
        db = Database()
        create_htables(db, relation, segmented=True)
        table = db.table("employee_salary")
        names = set(table.indexes)
        assert "employee_salary_ix_id" in names
        info = table.indexes["employee_salary_ix_id"]
        assert info.columns == ("segno", "id")

    def test_create_htables_unsegmented_indexes(self, relation):
        db = Database()
        create_htables(db, relation, segmented=False)
        info = db.table("employee_salary").indexes["employee_salary_ix_id"]
        assert info.columns == ("id",)

    def test_value_indexes_optional(self, relation):
        db = Database()
        create_htables(db, relation, segmented=False, value_indexes=True)
        assert "employee_salary_ix_value" in db.table("employee_salary").indexes

    def test_relations_table_records_history(self, relation):
        db = Database()
        db.set_date("1992-01-01")
        create_htables(db, relation, segmented=False)
        rows = list(db.table(RELATIONS_TABLE).rows())
        assert rows[0][0] == "employee"
        assert rows[0][2] == FOREVER  # open-ended relation history

    def test_global_tables_idempotent(self):
        db = Database()
        create_global_tables(db)
        create_global_tables(db)
        assert db.has_table(SEGMENT_TABLE)


class TestNowHandling:
    def test_current_tuples_carry_end_of_time(self):
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.apply_pending()
        (row,) = archis.history("employee", "salary")
        assert row[3] == FOREVER

    def test_published_now_is_end_of_time_string(self):
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.apply_pending()
        doc = archis.publish("employee")
        assert doc.elements()[0].get("tend") == "9999-12-31"

    def test_tend_function_substitutes_current_date(self):
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.db.set_date("1996-03-15")
        archis.apply_pending()
        out = archis.xquery(
            'for $e in doc("employees.xml")/employees/employee'
            "[tend(.) = current-date()] return $e/name"
        ).rows
        assert [e.text() for e in out] == ["Ann"]

    def test_rtend_via_fallback(self):
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.db.set_date("1996-03-15")
        archis.apply_pending()
        out = archis.xquery(
            'rtend(doc("employees.xml")/employees/employee[1])'
        ).rows
        assert out[0].get("tend") == "1996-03-15"

    def test_externalnow_via_fallback(self):
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.apply_pending()
        out = archis.xquery(
            'externalnow(doc("employees.xml")/employees/employee[1])'
        ).rows
        assert out[0].get("tend") == "now"

    def test_tendval_udf_registered(self):
        archis = make_archis()
        fn = archis.db.function("tendval")
        assert fn(FOREVER) == archis.db.current_date
        assert fn(100) == 100

    def test_range_predicates_work_on_raw_marker(self):
        """Paper 4.3: the internal representation supports index-based
        search without change — tend >= d matches current tuples."""
        archis = make_archis()
        archis.db.table("employee").insert((1, "Ann", 1, "T", "d"))
        archis.db.set_date("1996-01-01")
        archis.apply_pending()
        out = archis.xquery(
            'for $e in doc("employees.xml")/employees/employee'
            '[tstart(.) <= xs:date("1995-06-01") and '
            'tend(.) >= xs:date("1995-06-01")] return $e/name',
            allow_fallback=False,
        ).rows
        assert [e.text() for e in out] == ["Ann"]
