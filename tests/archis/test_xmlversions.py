"""Tests for multi-version XML document archiving (paper Section 9)."""

import pytest

from repro.archis.xmlversions import XmlVersionArchive
from repro.errors import ArchisError
from repro.util.timeutil import parse_date
from repro.xmlkit import parse_xml, serialize

V1 = """
<catalog year="v">
  <course id="cs101"><title>Intro to CS</title><units>4</units></course>
  <course id="cs130"><title>Databases</title><units>4</units></course>
</catalog>
"""

V2 = """
<catalog year="v">
  <course id="cs101"><title>Intro to CS</title><units>4</units></course>
  <course id="cs130"><title>Database Systems</title><units>4</units></course>
  <course id="cs188"><title>Temporal Databases</title><units>2</units></course>
</catalog>
"""

V3 = """
<catalog year="v">
  <course id="cs130"><title>Database Systems</title><units>4</units></course>
  <course id="cs188"><title>Temporal Databases</title><units>4</units></course>
</catalog>
"""


@pytest.fixture
def archive():
    arch = XmlVersionArchive("catalog")
    arch.commit(parse_xml(V1), "2001-09-01")
    arch.commit(parse_xml(V2), "2002-09-01")
    arch.commit(parse_xml(V3), "2003-09-01")
    return arch


class TestCommit:
    def test_version_count(self, archive):
        assert archive.version_count == 3

    def test_out_of_order_commit_rejected(self, archive):
        with pytest.raises(ArchisError):
            archive.commit(parse_xml(V1), "2000-01-01")

    def test_root_rename_rejected(self, archive):
        with pytest.raises(ArchisError):
            archive.commit(parse_xml("<syllabus/>"), "2004-09-01")

    def test_empty_archive_has_no_views(self):
        arch = XmlVersionArchive()
        with pytest.raises(ArchisError):
            arch.vdocument()
        with pytest.raises(ArchisError):
            arch.snapshot("2001-01-01")
        assert arch.first_appearance("x") is None


class TestVDocument:
    def test_every_element_is_timestamped(self, archive):
        vdoc = archive.vdocument()
        for node in [vdoc, *vdoc.descendants()]:
            assert node.get("tstart") is not None
            assert node.get("tend") is not None

    def test_unchanged_course_keeps_original_interval(self, archive):
        vdoc = archive.vdocument()
        cs130 = [c for c in vdoc.elements("course") if c.get("id") == "cs130"]
        assert len(cs130) == 1
        assert cs130[0].get("tstart") == "2001-09-01"
        assert cs130[0].get("tend") == "9999-12-31"

    def test_removed_course_closed(self, archive):
        vdoc = archive.vdocument()
        cs101 = [c for c in vdoc.elements("course") if c.get("id") == "cs101"][0]
        assert cs101.get("tend") == "2003-08-31"

    def test_text_change_recorded_as_runs(self, archive):
        vdoc = archive.vdocument()
        cs130 = [c for c in vdoc.elements("course") if c.get("id") == "cs130"][0]
        title = cs130.first("title")
        runs = [
            (r.text(), r.get("tstart"), r.get("tend"))
            for r in title.elements("text")
        ]
        assert runs == [
            ("Databases", "2001-09-01", "2002-08-31"),
            ("Database Systems", "2002-09-01", "9999-12-31"),
        ]

    def test_vdocument_is_serializable(self, archive):
        text = serialize(archive.vdocument())
        assert parse_xml(text) is not None


class TestSnapshots:
    def test_snapshot_reproduces_each_version(self, archive):
        for date, original in [
            ("2001-09-01", V1), ("2002-09-01", V2), ("2003-09-01", V3),
            ("2002-03-15", V1), ("2003-03-15", V2), ("2010-01-01", V3),
        ]:
            snapshot = archive.snapshot(date)
            assert snapshot.deep_equal(parse_xml(original)), date

    def test_snapshot_before_first_version_is_none(self, archive):
        assert archive.snapshot("1999-01-01") is None


class TestEvolutionQueries:
    def test_first_appearance_of_course(self, archive):
        """The paper's example: when was a new course first introduced."""
        when = archive.first_appearance("title", "Temporal Databases")
        assert when == parse_date("2002-09-01")

    def test_first_appearance_missing(self, archive):
        assert archive.first_appearance("title", "Quantum Computing") is None

    def test_xquery_over_vdocument(self, archive):
        out = archive.xquery(
            'for $c in doc("catalog.xml")/catalog/course'
            '[tend(.) = current-date()] return $c'
        )
        ids = {e.get("id") for e in out}
        assert ids == {"cs130", "cs188"}

    def test_xquery_temporal_functions_work(self, archive):
        out = archive.xquery(
            'tstart(doc("catalog.xml")/catalog/course[1])'
        )
        assert str(out[0]) == "2001-09-01"

    def test_xquery_slicing_over_versions(self, archive):
        out = archive.xquery(
            'for $c in doc("catalog.xml")/catalog/course[toverlaps(.,'
            ' telement(xs:date("2001-10-01"), xs:date("2002-01-01")))]'
            " return $c"
        )
        assert {e.get("id") for e in out} == {"cs101", "cs130"}


class TestAttributeChanges:
    def test_attr_change_is_replacement(self):
        arch = XmlVersionArchive()
        arch.commit(parse_xml('<doc><item name="a" level="1"/></doc>'), "2001-01-01")
        arch.commit(parse_xml('<doc><item name="a" level="2"/></doc>'), "2002-01-01")
        vdoc = arch.vdocument()
        items = vdoc.elements("item")
        assert len(items) == 2
        assert items[0].get("tend") == "2001-12-31"
        assert items[1].get("tstart") == "2002-01-01"

    def test_positional_matching_without_keys(self):
        arch = XmlVersionArchive()
        arch.commit(parse_xml("<doc><p>one</p><p>two</p></doc>"), "2001-01-01")
        arch.commit(parse_xml("<doc><p>one</p><p>TWO</p></doc>"), "2002-01-01")
        vdoc = arch.vdocument()
        paragraphs = vdoc.elements("p")
        assert len(paragraphs) == 2  # matched positionally, text run changed
        second = paragraphs[1]
        runs = [r.text() for r in second.elements("text")]
        assert runs == ["two", "TWO"]

    def test_deep_subtree_changes_tracked(self):
        arch = XmlVersionArchive()
        arch.commit(
            parse_xml('<spec><sec id="1"><sub>old</sub></sec></spec>'),
            "2001-01-01",
        )
        arch.commit(
            parse_xml('<spec><sec id="1"><sub>new</sub></sec></spec>'),
            "2002-01-01",
        )
        snapshot_old = arch.snapshot("2001-06-01")
        snapshot_new = arch.snapshot("2002-06-01")
        assert snapshot_old.first("sec").first("sub").text() == "old"
        assert snapshot_new.first("sec").first("sub").text() == "new"
