"""Background segment maintenance: equivalence, crash recovery, requeue.

The contract under test (DESIGN.md §4h): ``maintenance="background"``
must be *observably identical* to inline freezes — same H-table content
(rid-free: the deferred rewrite relocates rows), same segment
boundaries, same ``clustering.*`` counters — once the worker has
drained; a crash mid-rewrite recovers to a clean step boundary and the
resumed worker converges; and an archiver that dies mid-batch hands the
unapplied suffix back to the update log instead of losing it.
"""

import time

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.archis.validation import check_archive
from repro.errors import ArchisError
from repro.obs import get_registry
from repro.storage import InjectedCrash, get_crash_points
from repro.xmlkit import serialize

from tests.archis.test_batch_ingest import (
    archive_state,
    build_db,
    employee_ops,
    replay,
)

BATCH_SIZES = (None, 1, 7, 256)

#: the freeze-path counters that must move identically across modes
CLUSTERING_COUNTERS = (
    "clustering.segments_frozen",
    "clustering.rows_rewritten",
    "clustering.live_rows_copied",
)


def make_tracked(umin, min_segment_rows=8, path=None, **overrides):
    db = build_db(path)
    archis = ArchIS(
        db,
        config=ArchISConfig(
            umin=umin, min_segment_rows=min_segment_rows, **overrides
        ),
    )
    archis.track_table("employee")
    return archis


def counter_values():
    registry = get_registry()
    return {
        name: registry.counter(name).value for name in CLUSTERING_COUNTERS
    }


def run_mode(maintenance, umin, batch_size, count=240, **overrides):
    """Build, replay, apply and drain one archive; returns it plus the
    ``clustering.*`` counter deltas its apply produced."""
    archis = make_tracked(umin, maintenance=maintenance, **overrides)
    replay(archis.db, employee_ops(count=count))
    before = counter_values()
    archis.apply_pending(batch_size=batch_size)
    archis.drain_maintenance()
    deltas = {
        name: value - before[name]
        for name, value in counter_values().items()
    }
    return archis, deltas


class TestBackgroundEquivalence:
    """background drain == inline freeze, for content and counters."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize(
        "umin", [None, 0.5], ids=["unsegmented", "segmented"]
    )
    def test_matches_inline_state_and_counters(self, umin, batch_size):
        reference, inline_deltas = run_mode("inline", umin, batch_size)
        expected = archive_state(reference, with_rids=False)

        background, bg_deltas = run_mode("background", umin, batch_size)
        assert archive_state(background, with_rids=False) == expected
        assert bg_deltas == inline_deltas
        assert background.segments.pending_rewrites == []
        if umin is not None:
            assert background.segments.freeze_count > 0
            assert (
                background.segments.rewrites
                == background.segments.freeze_count
            )
        assert check_archive(background) == []
        background.close()

    def test_tiny_step_budget_converges_to_the_same_state(self):
        """A 3-row step budget forces many incremental steps per segment;
        the result must still be the inline state."""
        reference, _ = run_mode("inline", 0.5, None)
        expected = archive_state(reference, with_rids=False)
        registry = get_registry()
        steps_before = registry.counter("maintenance.steps").value

        background, _ = run_mode(
            "background", 0.5, None, maintenance_step_rows=3
        )
        assert archive_state(background, with_rids=False) == expected
        steps = registry.counter("maintenance.steps").value - steps_before
        assert steps > background.segments.freeze_count
        background.close()

    def test_queries_stay_correct_while_rewrites_are_outstanding(self):
        """The logical switch alone must already answer queries exactly:
        park the queue (no worker wakeup) and compare publications."""
        reference, _ = run_mode("inline", 0.5, None)

        archis = make_tracked(0.5, maintenance="background")
        archis.segments.on_freeze_request = lambda segno: None  # park
        replay(archis.db, employee_ops(count=240))
        archis.apply_pending()
        assert archis.segments.pending_rewrites, (
            "workload produced no outstanding rewrites"
        )
        assert serialize(archis.publish("employee")) == serialize(
            reference.publish("employee")
        )
        # un-park: the drained state converges to the inline one
        archis.segments.on_freeze_request = archis.maintenance.request
        archis.drain_maintenance()
        assert archive_state(archis, with_rids=False) == archive_state(
            reference, with_rids=False
        )
        archis.close()

    def test_off_mode_never_freezes(self):
        archis = make_tracked(0.5, maintenance="off")
        replay(archis.db, employee_ops(count=240))
        archis.apply_pending()
        assert archis.segments.freeze_count == 0
        assert list(archis.db.table("segment").rows()) == []
        assert archis.segments.live_segno == 1
        assert check_archive(archis) == []

    def test_stats_surface(self):
        archis, _ = run_mode("background", 0.5, 16)
        section = archis.stats()["maintenance"]
        assert section["mode"] == "background"
        assert section["pending_rewrites"] == []
        assert section["rewrites_completed"] == archis.segments.freeze_count
        assert section["worker"]["busy"] is False
        assert section["worker"]["error"] is None
        assert section["freezes_completed"] >= archis.segments.freeze_count
        archis.close()

    def test_config_rejects_bad_modes_and_budgets(self):
        with pytest.raises(ArchisError):
            ArchISConfig(maintenance="sometimes")
        with pytest.raises(ArchisError):
            ArchISConfig(maintenance_step_rows=0)


class TestCrashRecovery:
    """A crash at a step-commit boundary loses no history and resumes."""

    @pytest.fixture(autouse=True)
    def disarm_crash_points(self):
        yield
        get_crash_points().reset()

    def test_crash_mid_rewrite_recovers_and_resumes(self, tmp_path):
        reference, _ = run_mode("inline", 0.5, None)
        expected = archive_state(reference, with_rids=False)

        path = str(tmp_path / "bg.db")
        archis = make_tracked(0.5, path=path, maintenance="background")
        archis.save()
        replay(archis.db, employee_ops(count=240))
        # crash_from, not crash_at: after drain() re-raises (and clears)
        # the first error, the worker may retry — every retry must also
        # die before committing, as a real process death would
        with get_crash_points().crash_from("maintenance.step.commit", 1):
            archis.apply_pending(batch_size=16, durable=True)
            with pytest.raises(InjectedCrash):
                archis.drain_maintenance()
            archis.maintenance.stop()

        # reopen from disk: WAL recovery replays every committed batch
        # and every committed step, nothing of the torn one
        again = ArchIS.open(
            path, config=ArchISConfig(maintenance="background")
        )
        assert again.segments.pending_rewrites, (
            "the interrupted rewrite queue did not survive the reopen"
        )
        assert archive_state(again, with_rids=False) == expected
        # the resumed worker converges to the settled inline state
        again.drain_maintenance()
        assert again.segments.pending_rewrites == []
        assert archive_state(again, with_rids=False) == expected
        assert check_archive(again) == []
        again.close()

    def test_completed_rewrite_survives_a_reopen(self, tmp_path):
        reference, _ = run_mode("inline", 0.5, None)
        expected = archive_state(reference, with_rids=False)

        path = str(tmp_path / "settled.db")
        archis = make_tracked(0.5, path=path, maintenance="background")
        archis.save()
        replay(archis.db, employee_ops(count=240))
        archis.apply_pending(batch_size=16, durable=True)
        archis.drain_maintenance()
        archis.save()
        archis.close()

        again = ArchIS.open(path)
        assert again.segments.pending_rewrites == []
        assert archive_state(again, with_rids=False) == expected
        assert check_archive(again) == []
        again.close()


class TestWorkerLifecycle:
    def test_drain_reraises_and_clears_a_worker_error(self):
        archis = make_tracked(0.5, maintenance="background")
        replay(archis.db, employee_ops(count=240))

        original = archis.segments.rewrite_step
        tripped = {"n": 0}

        def failing(*args, **kwargs):
            tripped["n"] += 1
            raise RuntimeError("injected rewrite failure")

        archis.segments.rewrite_step = failing
        archis.apply_pending()
        with pytest.raises(RuntimeError):
            archis.drain_maintenance(timeout=10.0)
        assert tripped["n"] >= 1
        # the cause fixed, a second drain resumes and converges
        archis.segments.rewrite_step = original
        archis.drain_maintenance()
        assert archis.segments.pending_rewrites == []
        assert check_archive(archis) == []
        archis.close()

    def test_close_stops_the_worker_thread(self):
        import threading

        archis, _ = run_mode("background", 0.5, None)
        archis.close()
        deadline = time.time() + 5.0
        while time.time() < deadline and any(
            t.name == "repro-maintenance" and t.is_alive()
            for t in threading.enumerate()
        ):
            time.sleep(0.01)
        assert not any(
            t.name == "repro-maintenance" and t.is_alive()
            for t in threading.enumerate()
        )


class TestMidBatchFailureRequeue:
    """A dispatch failure mid-batch loses no update-log entries."""

    def test_unapplied_suffix_returns_to_the_log(self, monkeypatch):
        reference = make_tracked(0.5)
        replay(reference.db, employee_ops(count=60))
        reference.apply_pending(batch_size=None)
        expected = archive_state(reference, with_rids=False)

        archis = make_tracked(0.5)
        replay(archis.db, employee_ops(count=60))
        import repro.archis.batch as batch_module

        real = batch_module.dispatch_entry
        calls = {"n": 0}

        def flaky(writer, entry):
            calls["n"] += 1
            if calls["n"] == 25:
                raise RuntimeError("injected dispatch failure")
            return real(writer, entry)

        monkeypatch.setattr(batch_module, "dispatch_entry", flaky)
        with pytest.raises(RuntimeError):
            archis.apply_pending(batch_size=16)
        # 24 entries were dispatched (one full batch + 8 of the second);
        # everything from the failed entry on is pending again, in order
        pending = archis.db.update_log.pending()
        assert [entry.sequence for entry in pending] == list(range(25, 61))

        monkeypatch.setattr(batch_module, "dispatch_entry", real)
        applied = archis.apply_pending(batch_size=16)
        assert applied == 36
        assert archive_state(archis, with_rids=False) == expected
        assert check_archive(archis) == []

    def test_row_at_a_time_apply_also_requeues(self, monkeypatch):
        archis = make_tracked(None)
        replay(archis.db, employee_ops(count=20))
        import repro.archis.tracker as tracker_module

        real = tracker_module.dispatch_entry
        calls = {"n": 0}

        def flaky(writer, entry):
            calls["n"] += 1
            if calls["n"] == 8:
                raise RuntimeError("injected dispatch failure")
            return real(writer, entry)

        monkeypatch.setattr(tracker_module, "dispatch_entry", flaky)
        with pytest.raises(RuntimeError):
            archis.apply_pending(batch_size=None)
        pending = archis.db.update_log.pending()
        assert [entry.sequence for entry in pending] == list(range(8, 21))

        monkeypatch.setattr(tracker_module, "dispatch_entry", real)
        archis.apply_pending(batch_size=None)
        assert archis.db.update_log.pending() == []
        assert check_archive(archis) == []
