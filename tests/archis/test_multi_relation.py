"""Tests: several relations tracked in one ArchIS archive."""

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database
from repro.xmlkit import serialize


@pytest.fixture
def archis():
    db = Database()
    db.set_date("1992-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
            ("deptno", ColumnType.VARCHAR),
        ],
        primary_key=("id",),
    )
    db.create_table(
        "dept",
        [
            ("deptid", ColumnType.INT),
            ("deptno", ColumnType.VARCHAR),
            ("mgrno", ColumnType.INT),
        ],
        primary_key=("deptid",),
    )
    system = ArchIS(db, config=ArchISConfig(
        profile="atlas", umin=0.5, min_segment_rows=6))
    system.track_table("employee", document_name="employees.xml")
    system.track_table("dept", key="deptid", document_name="depts.xml")
    return system


def populate(archis):
    db = archis.db
    db.table("dept").insert((1, "d01", 2501))
    db.table("dept").insert((2, "d02", 3402))
    db.set_date("1995-01-01")
    db.table("employee").insert((1001, "Bob", 60000, "d01"))
    db.set_date("1995-06-01")
    db.table("employee").update_where(
        lambda r: r["id"] == 1001, {"salary": 70000}
    )
    db.table("dept").update_where(lambda r: r["deptid"] == 2, {"mgrno": 9})
    archis.apply_pending()


def test_both_relations_tracked(archis):
    populate(archis)
    assert set(archis.relations) == {"employee", "dept"}
    assert archis.document_names() == ["depts.xml", "employees.xml"]


def test_publish_each_relation(archis):
    populate(archis)
    employees = archis.publish("employee")
    depts = archis.publish("dept")
    assert employees.name == "employees"
    assert depts.name == "depts"
    assert len(depts.elements("dept")) == 2


def test_queries_against_each_document(archis):
    populate(archis)
    out = archis.xquery(
        'for $m in doc("depts.xml")/depts/dept/mgrno return $m',
        allow_fallback=False,
    ).rows
    assert sorted(e.text() for e in out) == ["2501", "3402", "9"]
    out = archis.xquery(
        'for $s in doc("employees.xml")/employees/employee/salary return $s',
        allow_fallback=False,
    ).rows
    assert len(out) == 2


def test_cross_document_query_via_fallback(archis):
    populate(archis)
    out = archis.xquery(
        'for $e in doc("employees.xml")/employees/employee '
        'for $d in doc("depts.xml")/depts/dept '
        "where $e/deptno = $d/deptno return $d/mgrno"
    ).rows
    assert [e.text() for e in out] == ["2501"]


def test_shared_segments_cover_both_relations(archis):
    """All H-tables of all relations share one segment timeline."""
    populate(archis)
    # force a freeze by churning employee salaries
    db = archis.db
    for round_no in range(12):
        db.advance_days(15)
        db.table("employee").update_where(
            lambda r: r["id"] == 1001, {"salary": 70000 + round_no}
        )
    archis.apply_pending()
    assert archis.segments.freeze_count >= 1
    # the dept H-tables were rewritten under the same segment numbers
    dept_segnos = {row[-1] for row in db.table("dept_mgrno").rows()}
    assert max(dept_segnos) >= archis.segments.live_segno - 1


def test_update_log_dispatches_by_relation(archis):
    db = archis.db
    db.table("employee").insert((1, "A", 1, "d01"))
    db.table("dept").insert((9, "d09", 1))
    applied = archis.apply_pending()
    assert applied == 2
    assert len(archis.history("employee", "salary")) == 1
    assert len(archis.history("dept", "mgrno")) == 1


def test_relation_isolation(archis):
    populate(archis)
    employees_doc = serialize(archis.publish("employee"))
    assert "mgrno" not in employees_doc
    depts_doc = serialize(archis.publish("dept"))
    assert "salary" not in depts_doc
