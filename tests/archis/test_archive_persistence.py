"""Tests: a file-backed ArchIS archive survives process restarts."""

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.errors import ArchisError, StorageError
from repro.rdb import ColumnType, Database
from repro.xmlkit import serialize

from tests.archis.test_clustering import churn


def build(path, profile="db2", umin=0.4):
    db = Database(path)
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
            ("title", ColumnType.VARCHAR),
            ("deptno", ColumnType.VARCHAR),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(db, config=ArchISConfig(
        profile=profile, umin=umin, min_segment_rows=8))
    archis.track_table("employee", document_name="employees.xml")
    return archis


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "archive.db")


def test_roundtrip_preserves_publication(db_path):
    archis = build(db_path)
    churn(archis, employees=8, rounds=12)
    before = serialize(archis.publish("employee"))
    archis.save()
    archis.db.close()

    again = ArchIS.open(db_path)
    assert serialize(again.publish("employee")) == before


def test_segment_state_restored(db_path):
    archis = build(db_path)
    churn(archis, employees=8, rounds=12)
    expected = (
        archis.segments.live_segno,
        archis.segments.live_start,
        archis.segments.freeze_count,
    )
    archis.save()
    archis.db.close()
    again = ArchIS.open(db_path)
    assert (
        again.segments.live_segno,
        again.segments.live_start,
        again.segments.freeze_count,
    ) == expected


def test_queries_work_after_reopen(db_path):
    archis = build(db_path)
    churn(archis, employees=8, rounds=12)
    query = (
        'for $s in doc("employees.xml")/employees/employee[id="3"]/salary '
        "return $s"
    )
    before = [serialize(e) for e in archis.xquery(query, allow_fallback=False).rows]
    archis.save()
    archis.db.close()
    again = ArchIS.open(db_path)
    after = [serialize(e) for e in again.xquery(query, allow_fallback=False).rows]
    assert after == before


def test_tracking_continues_after_reopen(db_path):
    archis = build(db_path)
    archis.db.table("employee").insert((1, "Ann", 100, "T", "d"))
    archis.apply_pending()
    archis.save()
    archis.db.close()

    again = ArchIS.open(db_path)
    again.db.advance_days(30)
    again.db.table("employee").update_where(
        lambda r: r["id"] == 1, {"salary": 200}
    )
    again.apply_pending()
    history = again.history("employee", "salary")
    assert [row[1] for row in history] == [100, 200]


def test_compressed_archive_reopens(db_path):
    archis = build(db_path)
    churn(archis, employees=8, rounds=12)
    archis.compress_archive()
    count_before = archis.xquery(
        'count(doc("employees.xml")/employees/employee/salary)',
        allow_fallback=False,
    )
    archis.save()
    archis.db.close()

    again = ArchIS.open(db_path)
    assert "employee_salary" in again.archive.compressed_tables
    count_after = again.xquery(
        'count(doc("employees.xml")/employees/employee/salary)',
        allow_fallback=False,
    )
    assert count_after == count_before


def test_validation_clean_after_reopen(db_path):
    from repro.archis.validation import check_archive

    archis = build(db_path)
    churn(archis, employees=8, rounds=12)
    archis.save()
    archis.db.close()
    again = ArchIS.open(db_path)
    assert check_archive(again) == []


def test_memory_archive_cannot_save():
    db = Database()
    archis = ArchIS(db, config=ArchISConfig(umin=None))
    with pytest.raises(StorageError):
        archis.save()


def test_open_without_sidecar_raises(db_path):
    archis = build(db_path)
    archis.db.save()  # catalog only, no archive sidecar
    archis.db.close()
    with pytest.raises(ArchisError):
        ArchIS.open(db_path)


def test_atlas_profile_roundtrip(db_path):
    archis = build(db_path, profile="atlas")
    archis.db.table("employee").insert((1, "Ann", 100, "T", "d"))
    archis.save()  # save() drains the pending log first
    archis.db.close()
    again = ArchIS.open(db_path)
    assert again.profile.name == "atlas"
    assert len(again.history("employee", "salary")) == 1
