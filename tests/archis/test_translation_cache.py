"""The XQuery → Translation LRU cache on :class:`ArchIS`.

Repeat translations must hit the cache, clustering/compression changes
must invalidate it (the optimized SQL embeds segment numbers), and the
cache must stay bounded.
"""

import pytest

from repro.archis.system import DEFAULT_TRANSLATION_CACHE_SIZE
from repro.obs import get_registry

from tests.archis.conftest import load_bob_history, make_archis

QUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary '
    "return $s"
)


def counters():
    registry = get_registry()
    return (
        registry.counter("translator.cache_hits"),
        registry.counter("translator.cache_misses"),
    )


class TestTranslationCache:
    def test_repeat_translation_hits_the_cache(self, archis):
        load_bob_history(archis)
        hits, misses = counters()
        first = archis.translate(QUERY)
        misses_after_first = misses.value
        hits_before = hits.value
        second = archis.translate(QUERY)
        assert second == first
        assert hits.value == hits_before + 1
        assert misses.value == misses_after_first

    def test_xquery_execution_uses_the_same_cache(self, archis):
        load_bob_history(archis)
        hits, _ = counters()
        archis.xquery(QUERY, allow_fallback=False)
        hits_before = hits.value
        archis.xquery(QUERY, allow_fallback=False)
        assert hits.value > hits_before

    def test_stats_expose_cache_metrics(self, archis):
        load_bob_history(archis)
        archis.translate(QUERY)
        stats = archis.stats()["translator"]
        assert stats["cache_size"] >= 1
        assert stats["cache_misses"] >= 1

    def test_freeze_invalidates_cached_translations(self):
        archis = make_archis(umin=0.4, min_segment_rows=2)
        load_bob_history(archis)
        _, misses = counters()
        archis.translate(QUERY)
        before = misses.value
        archis.segments.freeze()  # generation moves on
        archis.translate(QUERY)
        assert misses.value == before + 1

    def test_compression_invalidates_cached_translations(self, archis):
        load_bob_history(archis)
        _, misses = counters()
        archis.translate(QUERY)
        before = misses.value
        archis.compress_archive()
        archis.translate(QUERY)
        assert misses.value == before + 1

    def test_cache_is_bounded(self, archis):
        load_bob_history(archis)
        for i in range(DEFAULT_TRANSLATION_CACHE_SIZE + 10):
            archis.translation(
                'for $s in doc("employees.xml")/employees/employee'
                f'[id="{i}"]/salary return $s'
            )
        assert (
            len(archis._translation_cache) <= DEFAULT_TRANSLATION_CACHE_SIZE
        )

    def test_cache_size_is_configurable(self):
        archis = make_archis(translation_cache_size=3)
        load_bob_history(archis)
        assert archis.stats()["translator"]["cache_capacity"] == 3
        for i in range(10):
            archis.translation(
                'for $s in doc("employees.xml")/employees/employee'
                f'[id="{i}"]/salary return $s'
            )
        assert len(archis._translation_cache) <= 3

    def test_cache_size_must_be_positive(self):
        with pytest.raises(Exception):
            make_archis(translation_cache_size=0)

    def test_cache_is_thread_safe_under_concurrent_translation(self):
        import threading

        archis = make_archis(translation_cache_size=8)
        load_bob_history(archis)
        failures = []

        def translate(worker_id):
            try:
                for i in range(20):
                    archis.translation(
                        'for $s in doc("employees.xml")/employees/employee'
                        f'[id="{(worker_id + i) % 12}"]/salary return $s'
                    )
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=translate, args=(w,)) for w in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures, failures
        assert len(archis._translation_cache) <= 8

    def test_reset_caches_clears_the_cache(self, archis):
        load_bob_history(archis)
        archis.translate(QUERY)
        archis.reset_caches()
        assert len(archis._translation_cache) == 0
