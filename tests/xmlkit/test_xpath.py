"""Tests for the XPath subset."""

import pytest

from repro.errors import XPathError
from repro.xmlkit import parse_xml, xpath

DOC = """
<employees tstart="1985-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="9999-12-31">
    <name tstart="1995-01-01" tend="9999-12-31">Bob</name>
    <salary tstart="1995-01-01" tend="1995-05-31">60000</salary>
    <salary tstart="1995-06-01" tend="9999-12-31">70000</salary>
    <title tstart="1995-01-01" tend="1995-09-30">Engineer</title>
  </employee>
  <employee tstart="1993-04-01" tend="9999-12-31">
    <name tstart="1993-04-01" tend="9999-12-31">Ann</name>
    <salary tstart="1993-04-01" tend="9999-12-31">80000</salary>
  </employee>
</employees>
"""


@pytest.fixture
def doc():
    return parse_xml(DOC)


def test_absolute_path(doc):
    assert len(xpath(doc, "/employees/employee")) == 2


def test_absolute_path_from_inner_node(doc):
    inner = xpath(doc, "/employees/employee")[0]
    assert len(xpath(inner, "/employees/employee")) == 2


def test_relative_path(doc):
    emp = xpath(doc, "employee")[0]
    assert [e.text() for e in xpath(emp, "salary")] == ["60000", "70000"]


def test_wildcard(doc):
    emp = xpath(doc, "employee")[0]
    assert len(xpath(emp, "*")) == 4


def test_descendant_axis(doc):
    assert [e.text() for e in xpath(doc, "//name")] == ["Bob", "Ann"]


def test_attribute_step(doc):
    values = xpath(doc, "employee/@tstart")
    assert values == ["1995-01-01", "1993-04-01"]


def test_text_step(doc):
    assert xpath(doc, "employee/name/text()") == ["Bob", "Ann"]


def test_equality_predicate(doc):
    hits = xpath(doc, '/employees/employee[name="Bob"]')
    assert len(hits) == 1
    assert hits[0].first("name").text() == "Bob"


def test_attribute_predicate(doc):
    hits = xpath(doc, 'employee/salary[@tend="9999-12-31"]')
    assert [h.text() for h in hits] == ["70000", "80000"]


def test_numeric_comparison_predicate(doc):
    hits = xpath(doc, "employee/salary[text()>=70000]")
    assert [h.text() for h in hits] == ["70000", "80000"]


def test_date_string_comparison(doc):
    hits = xpath(doc, 'employee/salary[@tstart<="1994-01-01"]')
    assert [h.text() for h in hits] == ["80000"]


def test_positional_predicate(doc):
    assert xpath(doc, "employee[2]/name/text()") == ["Ann"]


def test_existence_predicate(doc):
    hits = xpath(doc, "employee[title]")
    assert len(hits) == 1


def test_and_predicate(doc):
    hits = xpath(doc, 'employee/salary[@tstart="1995-06-01" and @tend="9999-12-31"]')
    assert [h.text() for h in hits] == ["70000"]


def test_or_predicate(doc):
    hits = xpath(doc, 'employee[name="Bob" or name="Ann"]')
    assert len(hits) == 2


def test_no_match_is_empty(doc):
    assert xpath(doc, 'employee[name="Zed"]') == []


def test_chained_predicates(doc):
    hits = xpath(doc, "employee[title][1]")
    assert len(hits) == 1


def test_empty_path_raises(doc):
    with pytest.raises(XPathError):
        xpath(doc, "")


def test_bad_syntax_raises(doc):
    with pytest.raises(XPathError):
        xpath(doc, "employee[@]")
