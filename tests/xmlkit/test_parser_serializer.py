"""Tests for the XML parser and serializer."""

import pytest

from repro.errors import XmlError
from repro.xmlkit import parse_fragment, parse_xml, serialize


def test_simple_document():
    root = parse_xml("<a><b>hi</b></a>")
    assert root.name == "a"
    assert root.first("b").text() == "hi"


def test_attributes():
    root = parse_xml('<e tstart="1995-01-01" tend="9999-12-31"/>')
    assert root.get("tstart") == "1995-01-01"
    assert root.get("tend") == "9999-12-31"


def test_single_quoted_attribute():
    assert parse_xml("<e a='x'/>").get("a") == "x"


def test_self_closing():
    root = parse_xml("<a><b/><c/></a>")
    assert [e.name for e in root.elements()] == ["b", "c"]


def test_entities_unescaped():
    root = parse_xml("<a>&lt;x&gt; &amp; &quot;y&quot; &#65; &#x42;</a>")
    assert root.text() == '<x> & "y" A B'


def test_xml_declaration_and_comment_skipped():
    root = parse_xml('<?xml version="1.0"?><!-- hi --><a/>')
    assert root.name == "a"


def test_inner_comment_skipped():
    root = parse_xml("<a>x<!-- skip -->y</a>")
    assert root.text() == "xy"


def test_cdata():
    root = parse_xml("<a><![CDATA[<raw>&]]></a>")
    assert root.text() == "<raw>&"


def test_mixed_content_order():
    root = parse_xml("<a>x<b>y</b>z</a>")
    assert root.text() == "xyz"


def test_nested_depth():
    root = parse_xml("<a><b><c><d>deep</d></c></b></a>")
    assert root.first("b").first("c").first("d").text() == "deep"


def test_mismatched_tags_raise():
    with pytest.raises(XmlError):
        parse_xml("<a><b></a></b>")


def test_unterminated_raises():
    with pytest.raises(XmlError):
        parse_xml("<a><b>")


def test_duplicate_attribute_raises():
    with pytest.raises(XmlError):
        parse_xml('<a x="1" x="2"/>')


def test_junk_after_root_raises():
    with pytest.raises(XmlError):
        parse_xml("<a/><b/>")


def test_fragment():
    nodes = parse_fragment("<a/><b>t</b>")
    assert [n.name for n in nodes] == ["a", "b"]
    assert nodes[0].parent is None


def test_roundtrip_compact():
    text = '<employees><employee tstart="1995-01-01" tend="9999-12-31"><name>Bob &amp; Co</name></employee></employees>'
    assert serialize(parse_xml(text)) == text


def test_roundtrip_preserves_structure():
    original = parse_xml("<a><b x='1'>t</b><c/></a>")
    again = parse_xml(serialize(original))
    assert original.deep_equal(again)


def test_pretty_print():
    root = parse_xml("<a><b>t</b></a>")
    pretty = serialize(root, indent=2)
    assert pretty == "<a>\n  <b>t</b>\n</a>"


def test_serialize_escapes_attrs():
    root = parse_xml('<a x="&quot;q&quot;"/>')
    assert '"&quot;q&quot;"' in serialize(root)
