"""Tests for the DOM."""

import pytest

from repro.errors import XmlError
from repro.xmlkit.dom import Element, Text


def sample():
    emp = Element("employee", {"tstart": "1995-01-01", "tend": "9999-12-31"})
    name = Element("name")
    name.append("Bob")
    emp.append(name)
    salary = Element("salary")
    salary.append(Text("60000"))
    emp.append(salary)
    return emp


def test_append_sets_parent():
    emp = sample()
    assert emp.first("name").parent is emp


def test_elements_filter():
    emp = sample()
    assert [e.name for e in emp.elements()] == ["name", "salary"]
    assert [e.name for e in emp.elements("salary")] == ["salary"]
    assert [e.name for e in emp.elements("*")] == ["name", "salary"]


def test_first_missing_is_none():
    assert sample().first("title") is None


def test_text_concatenates_subtree():
    assert sample().text() == "Bob60000"


def test_descendants_document_order():
    root = Element("a")
    b = root.append(Element("b"))
    b.append(Element("c"))
    root.append(Element("d"))
    assert [e.name for e in root.descendants()] == ["b", "c", "d"]


def test_root():
    emp = sample()
    assert emp.first("name").root() is emp


def test_attrs():
    emp = sample()
    assert emp.get("tstart") == "1995-01-01"
    emp.set("tend", "1996-01-01")
    assert emp.get("tend") == "1996-01-01"
    assert emp.get("missing") is None
    assert emp.get("missing", "dflt") == "dflt"


def test_deep_equal_identical():
    assert sample().deep_equal(sample())


def test_deep_equal_ignores_whitespace_text():
    a = Element("x")
    a.append("  ")
    b = Element("x")
    assert a.deep_equal(b)


def test_deep_equal_detects_attr_change():
    other = sample()
    other.set("tstart", "1999-01-01")
    assert not sample().deep_equal(other)


def test_deep_equal_detects_text_change():
    other = sample()
    other.first("name").children[0].value = "Ann"
    assert not sample().deep_equal(other)


def test_copy_is_detached_and_equal():
    emp = sample()
    clone = emp.copy()
    assert clone.deep_equal(emp)
    assert clone.parent is None
    clone.first("name").children[0].value = "Ann"
    assert emp.first("name").text() == "Bob"


def test_empty_name_rejected():
    with pytest.raises(XmlError):
        Element("")


def test_append_bad_type_rejected():
    with pytest.raises(XmlError):
        Element("a").append(42)  # type: ignore[arg-type]
