"""Edge cases for XML serialization and pretty-printing."""

from repro.xmlkit import parse_xml, serialize
from repro.xmlkit.dom import Element, Text


def test_escapes_in_text():
    e = Element("a")
    e.append(Text("x < y & z > w"))
    assert serialize(e) == "<a>x &lt; y &amp; z &gt; w</a>"


def test_escapes_in_attributes():
    e = Element("a", {"q": 'he said "hi" & left'})
    out = serialize(e)
    assert "&quot;hi&quot;" in out
    assert "&amp;" in out


def test_empty_element_self_closes():
    assert serialize(Element("empty")) == "<empty/>"


def test_pretty_nested_structure():
    root = parse_xml("<a><b><c>t</c></b><d/></a>")
    pretty = serialize(root, indent=2)
    assert pretty == "<a>\n  <b>\n    <c>t</c>\n  </b>\n  <d/>\n</a>"


def test_pretty_skips_whitespace_text():
    root = Element("a")
    root.append(Text("   "))
    root.append(Element("b"))
    pretty = serialize(root, indent=2)
    assert pretty == "<a>\n  <b/>\n</a>"


def test_pretty_keeps_mixed_meaningful_text():
    root = parse_xml("<a>hello<b/></a>")
    pretty = serialize(root, indent=2)
    assert "hello" in pretty


def test_roundtrip_with_entities():
    text = "<a x=\"1 &amp; 2\">3 &lt; 4</a>"
    assert serialize(parse_xml(text)) == text


def test_serialize_text_node_directly():
    assert serialize(Text("a & b")) == "a &amp; b"


def test_unicode_preserved():
    root = parse_xml("<a>héllo wörld 部門</a>")
    again = parse_xml(serialize(root))
    assert again.text() == "héllo wörld 部門"


def test_deeply_nested_roundtrip():
    text = "<r>" + "<x>" * 40 + "deep" + "</x>" * 40 + "</r>"
    assert parse_xml(serialize(parse_xml(text))).text() == "deep"
