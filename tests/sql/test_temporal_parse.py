"""Parsing the temporal SQL surface: FOR SYSTEM_TIME, TEMPORAL JOIN,
NORMALIZE — plus the positioned syntax errors the lexer/parser now carry.
"""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse_sql
from repro.sql.lexer import tokenize
from repro.util.timeutil import FOREVER, parse_date


class TestTemporalClauses:
    def test_as_of_date_literal(self):
        select = parse_sql(
            "SELECT t.id FROM emp t FOR SYSTEM_TIME AS OF DATE '1995-02-15'"
        )
        (ref,) = select.sources
        assert isinstance(ref, ast.TableRef)
        assert ref.temporal == ast.TemporalClause(
            "as_of", ast.DateLiteral(parse_date("1995-02-15"))
        )

    def test_as_of_now_keyword_string(self):
        select = parse_sql("SELECT t.id FROM emp t FOR SYSTEM_TIME AS OF 'now'")
        (ref,) = select.sources
        assert ref.temporal.low == ast.DateLiteral(FOREVER)

    def test_from_to_window(self):
        select = parse_sql(
            "SELECT t.id FROM emp t FOR SYSTEM_TIME "
            "FROM '1995-01-01' TO '1996-01-01'"
        )
        (ref,) = select.sources
        assert ref.temporal.kind == "from_to"
        assert ref.temporal.low == ast.DateLiteral(parse_date("1995-01-01"))
        assert ref.temporal.high == ast.DateLiteral(parse_date("1996-01-01"))

    def test_between_and_window(self):
        select = parse_sql(
            "SELECT t.id FROM emp t FOR SYSTEM_TIME "
            "BETWEEN '1995-01-01' AND '1996-01-01'"
        )
        (ref,) = select.sources
        assert ref.temporal.kind == "between"

    def test_params_as_bounds(self):
        select = parse_sql(
            "SELECT t.id FROM emp t FOR SYSTEM_TIME FROM :lo TO :hi"
        )
        (ref,) = select.sources
        assert ref.temporal.low == ast.Param("lo")
        assert ref.temporal.high == ast.Param("hi")
        assert ast.temporal_param_names(select) == ["lo", "hi"]

    def test_clause_on_table_function(self):
        select = parse_sql(
            "SELECT t.id FROM TABLE(history_emp()) AS t(id, v, tstart, tend) "
            "FOR SYSTEM_TIME AS OF 100"
        )
        (ref,) = select.sources
        assert isinstance(ref, ast.TableFunctionRef)
        assert ref.temporal.kind == "as_of"
        assert ref.temporal.low == ast.Literal(100)

    def test_where_and_order_by_still_parse_after_clause(self):
        select = parse_sql(
            "SELECT t.id FROM emp t FOR SYSTEM_TIME AS OF 5 "
            "WHERE t.id = 1 ORDER BY t.id"
        )
        assert select.where is not None
        assert select.order_by

    def test_bad_date_is_a_syntax_error(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT t.id FROM emp t FOR SYSTEM_TIME AS OF 'nonsense'")

    def test_to_stays_usable_as_a_column_name(self):
        select = parse_sql("SELECT t.to FROM emp t WHERE t.to = 3")
        assert select.items[0].expr == ast.ColumnRef("t", "to")


class TestTemporalJoinAndNormalize:
    def test_temporal_join_parses_to_join_ref(self):
        select = parse_sql(
            "SELECT a.id FROM emp_a a TEMPORAL JOIN emp_b b ON a.id = b.id"
        )
        (ref,) = select.sources
        assert isinstance(ref, ast.TemporalJoinRef)
        assert isinstance(ref.left, ast.TableRef)
        assert isinstance(ref.right, ast.TableRef)
        assert list(r.alias for r in ast.flat_source_refs(select.sources)) == [
            "a",
            "b",
        ]

    def test_temporal_join_is_left_associative(self):
        select = parse_sql(
            "SELECT a.id FROM ta a TEMPORAL JOIN tb b ON a.id = b.id "
            "TEMPORAL JOIN tc c ON a.id = c.id"
        )
        (ref,) = select.sources
        assert isinstance(ref, ast.TemporalJoinRef)
        assert isinstance(ref.left, ast.TemporalJoinRef)

    def test_sides_can_carry_their_own_clauses(self):
        select = parse_sql(
            "SELECT a.id FROM ta a FOR SYSTEM_TIME AS OF 9 "
            "TEMPORAL JOIN tb b FOR SYSTEM_TIME AS OF 9 ON a.id = b.id"
        )
        (ref,) = select.sources
        assert ref.left.temporal.kind == "as_of"
        assert ref.right.temporal.kind == "as_of"

    def test_normalize_flag(self):
        select = parse_sql("SELECT NORMALIZE t.id, t.tstart, t.tend FROM emp t")
        assert select.normalize
        plain = parse_sql("SELECT t.id FROM emp t")
        assert not plain.normalize

    def test_select_is_temporal_classification(self):
        from repro.plan.build import select_is_temporal

        assert select_is_temporal(
            parse_sql("SELECT t.id FROM emp t FOR SYSTEM_TIME AS OF 5")
        )
        assert select_is_temporal(
            parse_sql("SELECT a.id FROM ta a TEMPORAL JOIN tb b ON a.id = b.id")
        )
        assert select_is_temporal(parse_sql("SELECT tavg(t.v) FROM emp t"))
        assert select_is_temporal(
            parse_sql("SELECT NORMALIZE t.id, t.tstart, t.tend FROM emp t")
        )
        assert not select_is_temporal(parse_sql("SELECT t.id FROM emp t"))


class TestPositionedErrors:
    def test_tokens_carry_line_and_column(self):
        tokens = tokenize("SELECT a\nFROM b")
        from_token = next(t for t in tokens if t.value == "from")
        assert (from_token.line, from_token.column) == (2, 1)
        b_token = next(t for t in tokens if t.value == "b")
        assert (b_token.line, b_token.column) == (2, 6)

    def test_lexer_error_is_positioned(self):
        with pytest.raises(SqlSyntaxError) as info:
            tokenize("SELECT a FROM b WHERE a = ~3")
        assert info.value.line == 1
        assert info.value.column == 27

    def test_parser_error_names_the_offending_token(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_sql("SELECT t.id\nFROM emp t WHERE ORDER BY t.id")
        err = info.value
        assert err.line == 2
        assert err.token == "order"
        assert "line 2" in str(err)

    def test_error_at_end_of_input(self):
        with pytest.raises(SqlSyntaxError) as info:
            parse_sql("SELECT t.id FROM emp t WHERE")
        assert "end of input" in str(info.value)
