"""Tests for uncorrelated subqueries: IN (SELECT ...), scalar, EXISTS."""

import pytest

from repro.errors import SqlPlanError
from repro.rdb import Database


@pytest.fixture
def db():
    database = Database()
    database.sql("CREATE TABLE emp (id INT, dept VARCHAR, salary INT)")
    database.sql(
        "INSERT INTO emp VALUES "
        "(1, 'eng', 100), (2, 'eng', 200), (3, 'sales', 300), (4, NULL, 50)"
    )
    database.sql("CREATE TABLE active_dept (dept VARCHAR)")
    database.sql("INSERT INTO active_dept VALUES ('eng')")
    return database


class TestInSubquery:
    def test_basic(self, db):
        result = db.sql(
            "SELECT id FROM emp WHERE dept IN (SELECT dept FROM active_dept) "
            "ORDER BY id"
        )
        assert result.column(0) == [1, 2]

    def test_not_in(self, db):
        result = db.sql(
            "SELECT id FROM emp WHERE dept NOT IN "
            "(SELECT dept FROM active_dept) ORDER BY id"
        )
        # NULL dept never matches either way
        assert result.column(0) == [3]

    def test_empty_subquery(self, db):
        db.sql("DELETE FROM active_dept")
        result = db.sql(
            "SELECT id FROM emp WHERE dept IN (SELECT dept FROM active_dept)"
        )
        assert result.rows == []

    def test_subquery_with_where(self, db):
        result = db.sql(
            "SELECT id FROM emp WHERE salary IN "
            "(SELECT salary FROM emp WHERE dept = 'sales')"
        )
        assert result.column(0) == [3]

    def test_with_params(self, db):
        result = db.sql(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM active_dept WHERE dept = :d) ORDER BY id",
            {"d": "eng"},
        )
        assert result.column(0) == [1, 2]


class TestScalarSubquery:
    def test_in_comparison(self, db):
        # avg(100, 200, 300, 50) = 162.5
        result = db.sql(
            "SELECT id FROM emp WHERE salary > (SELECT avg(salary) FROM emp)"
        )
        assert sorted(result.column(0)) == [2, 3]

    def test_in_projection(self, db):
        result = db.sql(
            "SELECT id, (SELECT max(salary) FROM emp) FROM emp WHERE id = 1"
        )
        assert result.rows == [(1, 300)]

    def test_empty_scalar_is_null(self, db):
        result = db.sql(
            "SELECT (SELECT dept FROM active_dept WHERE dept = 'zz') "
            "FROM emp WHERE id = 1"
        )
        assert result.scalar() is None

    def test_multi_row_scalar_raises(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT id FROM emp WHERE salary > (SELECT salary FROM emp)")

    def test_multi_column_scalar_raises(self, db):
        with pytest.raises(SqlPlanError):
            db.sql(
                "SELECT id FROM emp WHERE salary > "
                "(SELECT id, salary FROM emp WHERE id = 1)"
            )


class TestExists:
    def test_exists_true(self, db):
        result = db.sql(
            "SELECT count(*) FROM emp WHERE exists "
            "(SELECT dept FROM active_dept)"
        )
        assert result.scalar() == 4

    def test_exists_false(self, db):
        result = db.sql(
            "SELECT count(*) FROM emp WHERE exists "
            "(SELECT dept FROM active_dept WHERE dept = 'zz')"
        )
        assert result.scalar() == 0

    def test_not_exists(self, db):
        result = db.sql(
            "SELECT count(*) FROM emp WHERE NOT exists "
            "(SELECT dept FROM active_dept WHERE dept = 'zz')"
        )
        assert result.scalar() == 4


class TestNested:
    def test_in_inside_in(self, db):
        db.sql("CREATE TABLE regions (dept VARCHAR, region VARCHAR)")
        db.sql("INSERT INTO regions VALUES ('eng', 'west'), ('sales', 'east')")
        result = db.sql(
            "SELECT id FROM emp WHERE dept IN "
            "(SELECT dept FROM regions WHERE region IN "
            "(SELECT dept FROM active_dept WHERE dept = 'eng' )) "
        )
        # inner IN matches nothing (region 'west'/'east' not in active_dept)
        assert result.rows == []

    def test_subquery_result_reused_not_reexecuted(self, db):
        """The IN-subquery result is cached per statement execution."""
        calls = []
        original = db.table("active_dept").scan

        def counting_scan():
            calls.append(1)
            return original()

        db.table("active_dept").scan = counting_scan
        db.sql("SELECT id FROM emp WHERE dept IN (SELECT dept FROM active_dept)")
        assert len(calls) == 1
