"""Edge-case tests for the SQL engine: parser corners, NULL semantics,
INSERT..SELECT, params everywhere, planner choices."""

import pytest

from repro.errors import SqlSyntaxError
from repro.rdb import Database


@pytest.fixture
def db():
    database = Database()
    database.sql(
        "CREATE TABLE t (a INT, b VARCHAR, c FLOAT, d DATE)"
    )
    database.sql(
        "INSERT INTO t VALUES "
        "(1, 'x', 1.5, DATE '2000-01-01'), "
        "(2, 'y', NULL, DATE '2000-06-01'), "
        "(3, NULL, 2.5, NULL)"
    )
    return database


class TestParserCorners:
    def test_semicolon_tolerated(self, db):
        assert len(db.sql("SELECT a FROM t;")) == 3

    def test_comment_skipped(self, db):
        assert db.sql("SELECT a FROM t WHERE a = 1 -- trailing\n").rows == [(1,)]

    def test_quoted_identifiers(self, db):
        assert db.sql('SELECT "a" FROM "t" WHERE "a" = 2').rows == [(2,)]

    def test_string_escape_doubled_quote(self, db):
        db.sql("INSERT INTO t (a, b) VALUES (9, 'O''Brien')")
        assert db.sql("SELECT b FROM t WHERE a = 9").scalar() == "O'Brien"

    def test_keywords_case_insensitive(self, db):
        assert len(db.sql("select A from T wHeRe a > 0")) == 3

    def test_missing_from_raises(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT 1")

    def test_unbalanced_parens(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT a FROM t WHERE (a = 1")

    def test_garbage_after_statement(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELECT a FROM t banana loose")

    def test_varchar_with_size(self, db):
        db.sql("CREATE TABLE sized (name VARCHAR(20))")
        db.sql("INSERT INTO sized VALUES ('ok')")
        assert db.sql("SELECT name FROM sized").scalar() == "ok"


class TestNullSemantics:
    def test_null_comparison_filters_row(self, db):
        # c IS NULL for a=2; c > 1 must not match it
        assert sorted(r[0] for r in db.sql("SELECT a FROM t WHERE c > 1")) == [1, 3]

    def test_null_in_arithmetic_propagates(self, db):
        assert db.sql("SELECT c + 1 FROM t WHERE a = 2").scalar() is None

    def test_coalesce(self, db):
        assert db.sql("SELECT coalesce(c, 0) FROM t WHERE a = 2").scalar() == 0

    def test_nullif(self, db):
        assert db.sql("SELECT nullif(a, 1) FROM t WHERE a = 1").scalar() is None

    def test_order_by_with_nulls(self, db):
        result = db.sql("SELECT b FROM t ORDER BY b")
        assert result.column(0)[0] is None  # nulls first in our ordering

    def test_concat_treats_null_as_empty(self, db):
        assert db.sql("SELECT b || '!' FROM t WHERE a = 3").scalar() == "!"

    def test_count_star_vs_count_column(self, db):
        assert db.sql("SELECT count(*) FROM t").scalar() == 3
        assert db.sql("SELECT count(c) FROM t").scalar() == 2

    def test_avg_skips_nulls(self, db):
        assert db.sql("SELECT avg(c) FROM t").scalar() == 2.0


class TestInsertSelect:
    def test_insert_select_copies(self, db):
        db.sql("CREATE TABLE t2 (a INT, b VARCHAR, c FLOAT, d DATE)")
        count = db.sql("INSERT INTO t2 SELECT * FROM t WHERE a <= 2")
        assert count == 2
        assert db.sql("SELECT count(*) FROM t2").scalar() == 2

    def test_insert_select_with_columns(self, db):
        db.sql("CREATE TABLE narrow (a INT, b VARCHAR)")
        db.sql("INSERT INTO narrow (a, b) SELECT a, b FROM t WHERE a = 1")
        assert db.sql("SELECT * FROM narrow").rows == [(1, "x")]

    def test_insert_select_transform(self, db):
        db.sql("CREATE TABLE doubled (a INT)")
        db.sql("INSERT INTO doubled (a) SELECT a * 10 FROM t")
        assert sorted(db.sql("SELECT a FROM doubled").column(0)) == [10, 20, 30]


class TestParams:
    def test_param_in_insert(self, db):
        db.sql("INSERT INTO t (a, b) VALUES (:a, :b)", {"a": 7, "b": "p"})
        assert db.sql("SELECT b FROM t WHERE a = 7").scalar() == "p"

    def test_param_in_update(self, db):
        db.sql("UPDATE t SET b = :nb WHERE a = :k", {"nb": "zz", "k": 1})
        assert db.sql("SELECT b FROM t WHERE a = 1").scalar() == "zz"

    def test_param_in_delete(self, db):
        db.sql("DELETE FROM t WHERE a = :k", {"k": 2})
        assert db.sql("SELECT count(*) FROM t").scalar() == 2

    def test_param_used_twice(self, db):
        result = db.sql(
            "SELECT a FROM t WHERE a >= :v AND a <= :v", {"v": 2}
        )
        assert result.rows == [(2,)]


class TestPlannerChoices:
    def test_self_join_aliases(self, db):
        result = db.sql(
            "SELECT x.a, y.a FROM t x, t y WHERE x.a < y.a ORDER BY x.a, y.a"
        )
        assert result.rows == [(1, 2), (1, 3), (2, 3)]

    def test_join_key_with_nulls_excluded(self, db):
        db.sql("CREATE TABLE u (b VARCHAR)")
        db.sql("INSERT INTO u VALUES ('x'), (NULL)")
        result = db.sql("SELECT t.a FROM t, u WHERE t.b = u.b")
        assert result.rows == [(1,)]  # NULL join keys never match

    def test_filter_pushed_before_join(self, db):
        db.sql("CREATE TABLE v (a INT)")
        db.sql("INSERT INTO v VALUES (1), (2)")
        result = db.sql(
            "SELECT t.a FROM t, v WHERE t.a = v.a AND t.a = 1"
        )
        assert result.rows == [(1,)]

    def test_index_chosen_over_scan_gives_same_rows(self, db):
        before = sorted(db.sql("SELECT a FROM t WHERE a >= 2").rows)
        db.sql("CREATE INDEX ix_a ON t (a)")
        db.reset_caches()
        after = sorted(db.sql("SELECT a FROM t WHERE a >= 2").rows)
        assert before == after

    def test_date_param_range_on_index(self, db):
        db.sql("CREATE INDEX ix_d ON t (d)")
        result = db.sql(
            "SELECT a FROM t WHERE d >= :lo AND d <= :hi",
            {"lo": 0, "hi": 10**6},
        )
        assert sorted(r[0] for r in result) == [1, 2]

    def test_group_by_expression_key(self, db):
        db.sql("INSERT INTO t (a, b) VALUES (11, 'x')")
        result = db.sql(
            "SELECT b, count(*) FROM t WHERE b IS NOT NULL GROUP BY b ORDER BY b"
        )
        assert result.rows == [("x", 2), ("y", 1)]

    def test_aggregate_with_case(self, db):
        result = db.sql(
            "SELECT sum(CASE WHEN a > 1 THEN 1 ELSE 0 END) FROM t"
        )
        assert result.scalar() == 2


class TestResultSet:
    def test_scalar_requires_1x1(self, db):
        with pytest.raises(ValueError):
            db.sql("SELECT a FROM t").scalar()

    def test_column_by_name(self, db):
        assert db.sql("SELECT a, b FROM t WHERE a = 1").column("b") == ["x"]

    def test_first_on_empty(self, db):
        assert db.sql("SELECT a FROM t WHERE a = 99").first() is None

    def test_iteration_and_len(self, db):
        result = db.sql("SELECT a FROM t")
        assert len(result) == len(list(result))

    def test_repr(self, db):
        assert "ResultSet" in repr(db.sql("SELECT a FROM t"))
