"""Tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text)[:-1]]  # drop EOF


def test_keywords_lowercased():
    assert kinds("SELECT FROM") == [("KEYWORD", "select"), ("KEYWORD", "from")]


def test_identifiers_folded_to_lowercase():
    assert kinds("Employee") == [("NAME", "employee")]


def test_quoted_identifiers_preserve_case():
    assert kinds('"MixedCase"') == [("QNAME", "MixedCase")]


def test_numbers():
    assert kinds("42 3.14") == [("NUMBER", "42"), ("NUMBER", "3.14")]


def test_string_literal_with_escape():
    assert kinds("'it''s'") == [("STRING", "it's")]


def test_param():
    assert kinds(":who") == [("PARAM", "who")]


def test_operators():
    ops = [v for k, v in kinds("<> <= >= != || ( ) , . * = < > + - /")]
    assert "<>" in ops and "||" in ops and "<=" in ops


def test_comment_stripped():
    assert kinds("a -- comment here\nb") == [("NAME", "a"), ("NAME", "b")]


def test_eof_token_present():
    tokens = tokenize("a")
    assert tokens[-1].kind == "EOF"


def test_positions_recorded():
    tokens = tokenize("ab  cd")
    assert tokens[0].pos == 0
    assert tokens[1].pos == 4


def test_unexpected_character_raises():
    with pytest.raises(SqlSyntaxError):
        tokenize("a ? b")


def test_dollar_in_identifier():
    assert kinds("tab$le") == [("NAME", "tab$le")]


def test_sqlxml_keywords_recognized():
    got = kinds("XMLElement XMLAttributes XMLAgg Name")
    assert all(k == "KEYWORD" for k, _ in got)
