"""Tests for SQL DDL, DML and basic SELECT."""

import pytest

from repro.errors import SqlPlanError, SqlSyntaxError
from repro.rdb import Database


@pytest.fixture
def db():
    database = Database()
    database.sql(
        "CREATE TABLE employee (id INT, name VARCHAR, salary INT, "
        "hired DATE, PRIMARY KEY (id))"
    )
    database.sql(
        "INSERT INTO employee VALUES "
        "(1, 'Bob', 60000, DATE '1995-01-01'), "
        "(2, 'Ann', 72000, DATE '1993-03-01'), "
        "(3, 'Carl', 55000, DATE '1994-02-01')"
    )
    return database


class TestDdlDml:
    def test_create_and_insert(self, db):
        assert db.table("employee").row_count == 3

    def test_insert_with_columns(self, db):
        db.sql("INSERT INTO employee (id, name) VALUES (9, 'Zoe')")
        row = db.sql("SELECT salary FROM employee WHERE id = 9")
        assert row.rows == [(None,)]

    def test_update(self, db):
        count = db.sql("UPDATE employee SET salary = 61000 WHERE name = 'Bob'")
        assert count == 1
        assert db.sql("SELECT salary FROM employee WHERE name = 'Bob'").scalar() == 61000

    def test_update_expression(self, db):
        db.sql("UPDATE employee SET salary = salary + 1000 WHERE id = 1")
        assert db.sql("SELECT salary FROM employee WHERE id = 1").scalar() == 61000

    def test_delete(self, db):
        assert db.sql("DELETE FROM employee WHERE salary < 60000") == 1
        assert db.table("employee").row_count == 2

    def test_delete_all(self, db):
        assert db.sql("DELETE FROM employee") == 3

    def test_drop_table(self, db):
        db.sql("DROP TABLE employee")
        assert not db.has_table("employee")

    def test_create_index_via_sql(self, db):
        db.sql("CREATE INDEX emp_name ON employee (name)")
        assert "emp_name" in db.table("employee").indexes

    def test_bad_type(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("CREATE TABLE t (x GEOMETRY)")

    def test_syntax_error(self, db):
        with pytest.raises(SqlSyntaxError):
            db.sql("SELEC * FROM employee")


class TestSelect:
    def test_select_star(self, db):
        result = db.sql("SELECT * FROM employee")
        assert len(result) == 3
        assert result.columns == ["id", "name", "salary", "hired"]

    def test_projection(self, db):
        result = db.sql("SELECT name, salary FROM employee WHERE id = 2")
        assert result.rows == [("Ann", 72000)]

    def test_alias(self, db):
        result = db.sql("SELECT e.name AS who FROM employee AS e WHERE e.id = 1")
        assert result.columns == ["who"]
        assert result.scalar() == "Bob"

    def test_where_and_or(self, db):
        result = db.sql(
            "SELECT name FROM employee WHERE salary > 50000 AND salary < 70000"
        )
        assert sorted(r[0] for r in result) == ["Bob", "Carl"]

    def test_date_literal_comparison(self, db):
        result = db.sql(
            "SELECT name FROM employee WHERE hired <= DATE '1994-06-01'"
        )
        assert sorted(r[0] for r in result) == ["Ann", "Carl"]

    def test_arithmetic_projection(self, db):
        assert db.sql("SELECT salary * 2 FROM employee WHERE id = 1").scalar() == 120000

    def test_in_list(self, db):
        result = db.sql("SELECT name FROM employee WHERE id IN (1, 3)")
        assert sorted(r[0] for r in result) == ["Bob", "Carl"]

    def test_not_in(self, db):
        result = db.sql("SELECT name FROM employee WHERE id NOT IN (1, 3)")
        assert [r[0] for r in result] == ["Ann"]

    def test_between(self, db):
        result = db.sql("SELECT name FROM employee WHERE salary BETWEEN 56000 AND 65000")
        assert [r[0] for r in result] == ["Bob"]

    def test_is_null(self, db):
        db.sql("INSERT INTO employee (id, name) VALUES (9, 'Zoe')")
        result = db.sql("SELECT name FROM employee WHERE salary IS NULL")
        assert [r[0] for r in result] == ["Zoe"]
        result = db.sql("SELECT count(*) FROM employee WHERE salary IS NOT NULL")
        assert result.scalar() == 3

    def test_like(self, db):
        result = db.sql("SELECT name FROM employee WHERE name LIKE 'B%'")
        assert [r[0] for r in result] == ["Bob"]

    def test_order_by(self, db):
        result = db.sql("SELECT name FROM employee ORDER BY salary DESC")
        assert [r[0] for r in result] == ["Ann", "Bob", "Carl"]

    def test_order_by_two_keys(self, db):
        db.sql("INSERT INTO employee VALUES (4, 'Dan', 72000, DATE '1999-01-01')")
        result = db.sql("SELECT name FROM employee ORDER BY salary DESC, name ASC")
        assert [r[0] for r in result] == ["Ann", "Dan", "Bob", "Carl"]

    def test_limit(self, db):
        result = db.sql("SELECT name FROM employee ORDER BY id LIMIT 2")
        assert [r[0] for r in result] == ["Bob", "Ann"]

    def test_distinct(self, db):
        db.sql("INSERT INTO employee VALUES (5, 'Bob', 1, DATE '2000-01-01')")
        result = db.sql("SELECT DISTINCT name FROM employee ORDER BY name")
        assert [r[0] for r in result] == ["Ann", "Bob", "Carl"]

    def test_case(self, db):
        result = db.sql(
            "SELECT CASE WHEN salary >= 60000 THEN 'high' ELSE 'low' END "
            "FROM employee ORDER BY id"
        )
        assert [r[0] for r in result] == ["high", "high", "low"]

    def test_params(self, db):
        result = db.sql(
            "SELECT name FROM employee WHERE salary > :floor", {"floor": 60000}
        )
        assert [r[0] for r in result] == ["Ann"]

    def test_missing_param(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT name FROM employee WHERE salary > :floor")

    def test_unknown_column(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT wages FROM employee")

    def test_ambiguous_column(self, db):
        db.sql("CREATE TABLE other (id INT, x INT)")
        with pytest.raises(SqlPlanError):
            db.sql("SELECT id FROM employee, other")

    def test_scalar_functions(self, db):
        assert db.sql("SELECT upper(name) FROM employee WHERE id = 1").scalar() == "BOB"
        assert db.sql("SELECT length(name) FROM employee WHERE id = 3").scalar() == 4
        assert (
            db.sql("SELECT datestr(hired) FROM employee WHERE id = 1").scalar()
            == "1995-01-01"
        )

    def test_concat_operator(self, db):
        assert (
            db.sql("SELECT name || '!' FROM employee WHERE id = 1").scalar()
            == "Bob!"
        )


class TestAggregates:
    def test_count_star(self, db):
        assert db.sql("SELECT count(*) FROM employee").scalar() == 3

    def test_sum_avg_min_max(self, db):
        row = db.sql(
            "SELECT sum(salary), avg(salary), min(salary), max(salary) FROM employee"
        ).first()
        assert row[0] == 187000
        assert abs(row[1] - 62333.333) < 0.01
        assert row[2] == 55000
        assert row[3] == 72000

    def test_count_ignores_null(self, db):
        db.sql("INSERT INTO employee (id, name) VALUES (9, 'Zoe')")
        assert db.sql("SELECT count(salary) FROM employee").scalar() == 3

    def test_group_by(self, db):
        db.sql("INSERT INTO employee VALUES (4, 'Bob', 10000, DATE '2001-01-01')")
        result = db.sql(
            "SELECT name, count(*), sum(salary) FROM employee "
            "GROUP BY name ORDER BY name"
        )
        assert result.rows == [
            ("Ann", 1, 72000),
            ("Bob", 2, 70000),
            ("Carl", 1, 55000),
        ]

    def test_aggregate_over_empty(self, db):
        db.sql("DELETE FROM employee")
        assert db.sql("SELECT count(*) FROM employee").scalar() == 0
        assert db.sql("SELECT max(salary) FROM employee").scalar() is None

    def test_count_distinct(self, db):
        db.sql("INSERT INTO employee VALUES (4, 'Bob', 10000, DATE '2001-01-01')")
        assert db.sql("SELECT count(DISTINCT name) FROM employee").scalar() == 3

    def test_expression_over_aggregate(self, db):
        assert db.sql("SELECT max(salary) - min(salary) FROM employee").scalar() == 17000


class TestJoins:
    @pytest.fixture
    def db2(self, db):
        db.sql("CREATE TABLE dept (deptno VARCHAR, empid INT)")
        db.sql(
            "INSERT INTO dept VALUES ('d01', 1), ('d02', 2), ('d02', 3), ('d09', 99)"
        )
        return db

    def test_equi_join(self, db2):
        result = db2.sql(
            "SELECT e.name, d.deptno FROM employee e, dept d "
            "WHERE e.id = d.empid ORDER BY e.id"
        )
        assert result.rows == [("Bob", "d01"), ("Ann", "d02"), ("Carl", "d02")]

    def test_join_with_filter(self, db2):
        result = db2.sql(
            "SELECT e.name FROM employee e, dept d "
            "WHERE e.id = d.empid AND d.deptno = 'd02' ORDER BY e.name"
        )
        assert [r[0] for r in result] == ["Ann", "Carl"]

    def test_cartesian_product(self, db2):
        result = db2.sql("SELECT count(*) FROM employee e, dept d")
        assert result.scalar() == 12

    def test_three_way_join(self, db2):
        db2.sql("CREATE TABLE loc (deptno VARCHAR, city VARCHAR)")
        db2.sql("INSERT INTO loc VALUES ('d01', 'LA'), ('d02', 'SF')")
        result = db2.sql(
            "SELECT e.name, l.city FROM employee e, dept d, loc l "
            "WHERE e.id = d.empid AND d.deptno = l.deptno ORDER BY e.id"
        )
        assert result.rows == [("Bob", "LA"), ("Ann", "SF"), ("Carl", "SF")]

    def test_non_equi_join(self, db2):
        result = db2.sql(
            "SELECT count(*) FROM employee a, employee b WHERE a.salary < b.salary"
        )
        assert result.scalar() == 3


class TestIndexUsage:
    def test_index_scan_equality(self, db):
        db.sql("CREATE INDEX emp_sal ON employee (salary)")
        db.reset_caches()
        result = db.sql("SELECT name FROM employee WHERE salary = 72000")
        assert [r[0] for r in result] == ["Ann"]

    def test_index_scan_range(self, db):
        db.sql("CREATE INDEX emp_sal ON employee (salary)")
        result = db.sql(
            "SELECT name FROM employee WHERE salary >= 56000 AND salary <= 73000"
        )
        assert sorted(r[0] for r in result) == ["Ann", "Bob"]

    def test_composite_index_prefix(self, db):
        db.sql("CREATE INDEX comp ON employee (name, salary)")
        result = db.sql(
            "SELECT id FROM employee WHERE name = 'Bob' AND salary >= 1"
        )
        assert [r[0] for r in result] == [1]

    def test_index_and_residual_filter(self, db):
        db.sql("CREATE INDEX emp_sal ON employee (salary)")
        result = db.sql(
            "SELECT name FROM employee WHERE salary >= 50000 AND name LIKE 'C%'"
        )
        assert [r[0] for r in result] == ["Carl"]

    def test_results_equal_with_and_without_index(self, db):
        before = sorted(db.sql("SELECT name FROM employee WHERE salary > 56000").rows)
        db.sql("CREATE INDEX emp_sal ON employee (salary)")
        after = sorted(db.sql("SELECT name FROM employee WHERE salary > 56000").rows)
        assert before == after


class TestTableFunctions:
    def test_table_function_source(self, db):
        db.register_table_function(
            "gen", lambda n: ((i, i * i) for i in range(n))
        )
        result = db.sql(
            "SELECT t.a, t.b FROM TABLE(gen(4)) AS t(a, b) WHERE t.a > 1"
        )
        assert result.rows == [(2, 4), (3, 9)]

    def test_table_function_join(self, db):
        db.register_table_function("gen", lambda n: ((i,) for i in range(n)))
        result = db.sql(
            "SELECT e.name FROM employee e, TABLE(gen(10)) AS g(n) "
            "WHERE e.id = g.n ORDER BY e.id"
        )
        assert [r[0] for r in result] == ["Bob", "Ann", "Carl"]

    def test_unknown_table_function(self, db):
        with pytest.raises(SqlPlanError):
            db.sql("SELECT * FROM TABLE(nope()) AS t(a)")
