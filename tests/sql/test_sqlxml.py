"""Tests for SQL/XML constructs: XMLElement, XMLAttributes, XMLAgg.

Includes the paper's Section 5.3 example: new_employees hired after a date.
"""

import pytest

from repro.rdb import Database
from repro.xmlkit import serialize
from repro.xmlkit.dom import Element


@pytest.fixture
def db():
    database = Database()
    database.sql(
        "CREATE TABLE employee_name (id INT, name VARCHAR, tstart DATE, tend DATE)"
    )
    database.sql(
        "INSERT INTO employee_name VALUES "
        "(1, 'Bob', DATE '2003-03-01', DATE '9999-12-31'), "
        "(2, 'Jack', DATE '2003-04-01', DATE '9999-12-31'), "
        "(3, 'Old', DATE '1999-01-01', DATE '9999-12-31')"
    )
    database.sql(
        "CREATE TABLE employee_title (id INT, title VARCHAR, tstart DATE, tend DATE)"
    )
    database.sql(
        "INSERT INTO employee_title VALUES "
        "(1, 'Engineer', DATE '2003-03-01', DATE '2003-12-31'), "
        "(1, 'Sr Engineer', DATE '2004-01-01', DATE '9999-12-31'), "
        "(2, 'QA', DATE '2003-04-01', DATE '9999-12-31')"
    )
    return database


def test_xmlelement_simple(db):
    result = db.sql(
        "SELECT XMLElement(Name \"employee\", e.name) FROM employee_name e "
        "WHERE e.id = 1"
    )
    element = result.scalar()
    assert isinstance(element, Element)
    assert serialize(element) == "<employee>Bob</employee>"


def test_xmlelement_attributes(db):
    result = db.sql(
        'SELECT XMLElement(Name "name", XMLAttributes('
        'datestr(e.tstart) AS "tstart", datestr(e.tend) AS "tend"), e.name) '
        "FROM employee_name e WHERE e.id = 1"
    )
    element = result.scalar()
    assert element.get("tstart") == "2003-03-01"
    assert element.get("tend") == "9999-12-31"
    assert element.text() == "Bob"


def test_xmlelement_nested(db):
    result = db.sql(
        'SELECT XMLElement(Name "emp", XMLElement(Name "id", e.id), '
        'XMLElement(Name "name", e.name)) FROM employee_name e WHERE e.id = 2'
    )
    element = result.scalar()
    assert element.first("id").text() == "2"
    assert element.first("name").text() == "Jack"


def test_null_attribute_skipped(db):
    db.sql("INSERT INTO employee_name VALUES (9, NULL, DATE '2003-01-01', DATE '9999-12-31')")
    result = db.sql(
        'SELECT XMLElement(Name "e", XMLAttributes(e.name AS "n"), e.id) '
        "FROM employee_name e WHERE e.id = 9"
    )
    element = result.scalar()
    assert element.get("n") is None
    assert element.text() == "9"


def test_paper_new_employees_example(db):
    """The Section 5.3 example: employees hired after 2003-02-04."""
    result = db.sql(
        'SELECT XMLElement (Name "new_employees", '
        "XMLAttributes ('2003-02-04' AS \"start\"), "
        'XMLAgg (XMLElement (Name "employee", e.name))) '
        "FROM employee_name AS e "
        "WHERE e.tstart >= DATE '2003-02-04'"
    )
    element = result.scalar()
    assert element.name == "new_employees"
    assert element.get("start") == "2003-02-04"
    names = [child.text() for child in element.elements("employee")]
    assert names == ["Bob", "Jack"]


def test_xmlagg_group_by(db):
    """The QUERY 1 translation shape: one title_history per employee id."""
    result = db.sql(
        'SELECT XMLElement(Name "title_history", '
        'XMLAgg(XMLElement(Name "title", XMLAttributes('
        'datestr(t.tstart) AS "tstart", datestr(t.tend) AS "tend"), t.title))) '
        "FROM employee_title t, employee_name n "
        "WHERE n.id = t.id AND n.name = 'Bob' "
        "GROUP BY n.id"
    )
    assert len(result) == 1
    history = result.scalar()
    titles = [(e.text(), e.get("tstart")) for e in history.elements("title")]
    assert titles == [
        ("Engineer", "2003-03-01"),
        ("Sr Engineer", "2004-01-01"),
    ]


def test_xmlagg_order_by(db):
    result = db.sql(
        'SELECT XMLAgg(XMLElement(Name "t", t.title) ORDER BY t.tstart DESC) '
        "FROM employee_title t WHERE t.id = 1"
    )
    forest = result.scalar()
    assert [e.text() for e in forest] == ["Sr Engineer", "Engineer"]


def test_xmlagg_empty_group(db):
    result = db.sql(
        'SELECT XMLAgg(XMLElement(Name "x", e.id)) FROM employee_name e '
        "WHERE e.id = 12345"
    )
    assert result.scalar() == []


def test_result_xml_forest(db):
    result = db.sql(
        'SELECT XMLElement(Name "n", e.name) FROM employee_name e ORDER BY e.id'
    )
    forest = result.xml()
    assert [e.text() for e in forest] == ["Bob", "Jack", "Old"]
    assert result.xml_text() == "<n>Bob</n><n>Jack</n><n>Old</n>"


def test_temporal_udfs_in_sql(db):
    result = db.sql(
        "SELECT e.name FROM employee_name e "
        "WHERE toverlaps(e.tstart, e.tend, DATE '2003-03-15', DATE '2003-03-20') "
        "ORDER BY e.id"
    )
    assert [r[0] for r in result] == ["Bob", "Old"]


def test_overlap_interval_udfs(db):
    result = db.sql(
        "SELECT datestr(overlap_start(e.tstart, e.tend, DATE '2003-01-01', "
        "DATE '2003-03-15')), datestr(overlap_end(e.tstart, e.tend, "
        "DATE '2003-01-01', DATE '2003-03-15')) "
        "FROM employee_name e WHERE e.id = 1"
    )
    assert result.rows == [("2003-03-01", "2003-03-15")]


def test_overlap_null_when_disjoint(db):
    result = db.sql(
        "SELECT overlap_start(e.tstart, e.tend, DATE '1990-01-01', "
        "DATE '1990-12-31') FROM employee_name e WHERE e.id = 1"
    )
    assert result.scalar() is None
