"""Direct unit tests for the SQL scalar function library."""

import pytest

from repro.errors import SqlPlanError
from repro.sql.functions import (
    BUILTIN_FUNCTIONS,
    sql_coalesce,
    sql_datestr,
    sql_dateval,
    sql_greatest,
    sql_is_now,
    sql_least,
    sql_overlap_end,
    sql_overlap_start,
    sql_substr,
    sql_tcontains,
    sql_tequals,
    sql_timespan,
    sql_tmeets,
    sql_toverlaps,
    sql_tprecedes,
)
from repro.util.timeutil import FOREVER, parse_date

D = parse_date


class TestTemporalUdfs:
    def test_toverlaps(self):
        assert sql_toverlaps(D("1995-01-01"), D("1995-06-30"),
                             D("1995-06-01"), D("1995-12-31"))
        assert not sql_toverlaps(D("1995-01-01"), D("1995-05-31"),
                                 D("1995-06-01"), D("1995-12-31"))

    def test_tcontains(self):
        assert sql_tcontains(D("1994-01-01"), D("1998-12-31"),
                             D("1995-01-01"), D("1995-12-31"))
        assert not sql_tcontains(D("1995-01-01"), D("1995-12-31"),
                                 D("1994-01-01"), D("1998-12-31"))

    def test_tequals(self):
        assert sql_tequals(1, 2, 1, 2)
        assert not sql_tequals(1, 2, 1, 3)

    def test_tmeets(self):
        assert sql_tmeets(D("1995-01-01"), D("1995-05-31"),
                          D("1995-06-01"), D("1995-12-31"))

    def test_tprecedes(self):
        assert sql_tprecedes(1, 2, 4, 5)
        assert not sql_tprecedes(1, 3, 3, 5)

    def test_string_dates_accepted(self):
        assert sql_toverlaps("1995-01-01", "1995-12-31",
                             "1995-06-01", "1996-06-01")

    def test_overlap_interval(self):
        assert sql_overlap_start(1, 10, 5, 20) == 5
        assert sql_overlap_end(1, 10, 5, 20) == 10
        assert sql_overlap_start(1, 2, 5, 6) is None
        assert sql_overlap_end(1, 2, 5, 6) is None

    def test_timespan(self):
        assert sql_timespan(D("1995-01-01"), D("1995-01-31")) == 31

    def test_bad_date_type_raises(self):
        with pytest.raises(SqlPlanError):
            sql_toverlaps(1.5, 2, 3, 4)


class TestDateHelpers:
    def test_datestr(self):
        assert sql_datestr(0) == "1970-01-01"
        assert sql_datestr(FOREVER) == "9999-12-31"
        assert sql_datestr(None) is None

    def test_dateval(self):
        assert sql_dateval("1970-01-02") == 1
        assert sql_dateval("now") == FOREVER
        assert sql_dateval(None) is None

    def test_is_now(self):
        assert sql_is_now(FOREVER)
        assert not sql_is_now(0)


class TestGenericScalars:
    def test_coalesce(self):
        assert sql_coalesce(None, None, 3) == 3
        assert sql_coalesce(None, None) is None

    def test_greatest_least(self):
        assert sql_greatest(1, None, 3) == 3
        assert sql_least(1, None, 3) == 1
        assert sql_greatest(None) is None

    def test_substr(self):
        assert sql_substr("hello", 2) == "ello"
        assert sql_substr("hello", 2, 3) == "ell"
        assert sql_substr(None, 1) is None

    def test_registry_complete(self):
        for name in ("toverlaps", "datestr", "coalesce", "upper", "substr"):
            assert name in BUILTIN_FUNCTIONS
