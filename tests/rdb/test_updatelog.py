"""Update-log memory and accounting semantics.

Drained entries leave the log for good (the in-memory footprint is the
pending tail, not the full mutation history), sequence numbers stay
monotonic across drains, a failed archiver hands its unapplied suffix
back via ``requeue``, and every log instance reports its own
``updatelog.backlog`` gauge series.
"""

from repro.obs import get_registry
from repro.rdb import ColumnType, Database
from repro.rdb.updatelog import UpdateLog


def fill(log, count, day=1):
    return [
        log.append(day, "t", "insert", (index,)) for index in range(count)
    ]


class TestTrimOnDrain:
    def test_drain_leaves_only_the_pending_tail(self):
        log = UpdateLog()
        fill(log, 5)
        assert len(log) == 5
        drained = log.drain()
        assert [entry.sequence for entry in drained] == [1, 2, 3, 4, 5]
        assert len(log) == 0
        assert log.pending() == []
        assert log.consumed_count == 5

    def test_sequences_stay_monotonic_across_drains(self):
        log = UpdateLog()
        fill(log, 3)
        log.drain()
        entry = log.append(9, "t", "insert", (9,))
        assert entry.sequence == 4
        fill(log, 2, day=10)
        assert [e.sequence for e in log.pending()] == [4, 5, 6]

    def test_predicate_drain_keeps_nonmatching_entries_in_order(self):
        log = UpdateLog()
        fill(log, 6)
        drained = log.drain(lambda entry: entry.row[0] % 2 == 0)
        assert [entry.row[0] for entry in drained] == [0, 2, 4]
        assert [entry.row[0] for entry in log.pending()] == [1, 3, 5]
        assert log.consumed_count == 3


class TestRequeue:
    def test_requeue_restores_the_front_in_order(self):
        log = UpdateLog()
        fill(log, 4)
        drained = log.drain()
        log.append(7, "t", "insert", (7,))  # arrived since the drain
        log.requeue(drained[2:])
        assert [e.sequence for e in log.pending()] == [3, 4, 5]
        assert log.consumed_count == 2

    def test_requeue_nothing_is_a_noop(self):
        log = UpdateLog()
        fill(log, 2)
        log.drain()
        log.requeue([])
        assert log.pending() == []
        assert log.consumed_count == 2

    def test_requeued_entries_drain_again(self):
        log = UpdateLog()
        fill(log, 3)
        drained = log.drain()
        log.requeue(drained)
        assert log.drain() == drained
        assert log.consumed_count == 3


class TestBacklogGauge:
    def test_each_log_reports_its_own_series(self):
        gauge = get_registry().labeled_gauge(
            "updatelog.backlog", label_key="log"
        )
        first = UpdateLog(scope="test-backlog-a")
        second = UpdateLog(scope="test-backlog-b")
        fill(first, 3)
        fill(second, 1)
        assert gauge.get("test-backlog-a") == 3
        assert gauge.get("test-backlog-b") == 1
        first.drain()
        assert gauge.get("test-backlog-a") == 0
        assert gauge.get("test-backlog-b") == 1
        gauge.remove("test-backlog-a")
        gauge.remove("test-backlog-b")

    def test_close_retires_the_series(self):
        gauge = get_registry().labeled_gauge(
            "updatelog.backlog", label_key="log"
        )
        log = UpdateLog(scope="test-backlog-closed")
        fill(log, 2)
        assert "test-backlog-closed" in gauge.values
        log.close()
        # a closed log must not linger in the family: stale series would
        # accumulate per archive/shard ever opened and poison total()
        assert "test-backlog-closed" not in gauge.values
        log.close()  # idempotent
        assert "test-backlog-closed" not in gauge.values

    def test_append_after_close_republishes(self):
        gauge = get_registry().labeled_gauge(
            "updatelog.backlog", label_key="log"
        )
        log = UpdateLog(scope="test-backlog-reopen")
        fill(log, 1)
        log.close()
        log.append(2, "t", "insert", (9,))
        assert gauge.get("test-backlog-reopen") == 2
        log.close()
        assert "test-backlog-reopen" not in gauge.values

    def test_database_close_retires_its_logs_series(self, tmp_path):
        gauge = get_registry().labeled_gauge(
            "updatelog.backlog", label_key="log"
        )
        path = str(tmp_path / "retired.db")
        db = Database(path)
        db.create_table(
            "t", [("id", ColumnType.INT)], primary_key=("id",)
        )
        db.update_log.append(1, "t", "insert", (1,))
        assert path in gauge.values
        db.close()
        assert path not in gauge.values

    def test_anonymous_logs_get_unique_scopes(self):
        a, b = UpdateLog(), UpdateLog()
        assert a.scope != b.scope

    def test_file_backed_database_scopes_by_path(self, tmp_path):
        path = str(tmp_path / "scoped.db")
        db = Database(path)
        db.create_table(
            "t", [("id", ColumnType.INT)], primary_key=("id",)
        )
        assert db.update_log.scope == path
        db.close()
