"""Tests for column types and schemas."""

import pytest

from repro.errors import IntegrityError
from repro.rdb.types import Column, ColumnType, TableSchema
from repro.util.timeutil import FOREVER


def make_schema():
    return TableSchema(
        "employee",
        [
            Column("id", ColumnType.INT, nullable=False),
            Column("name", ColumnType.VARCHAR),
            Column("salary", ColumnType.FLOAT),
            Column("hired", ColumnType.DATE),
        ],
        primary_key=("id",),
    )


class TestColumnType:
    def test_int_ok(self):
        assert ColumnType.INT.validate(5, "c") == 5

    def test_int_rejects_str(self):
        with pytest.raises(IntegrityError):
            ColumnType.INT.validate("5", "c")

    def test_int_rejects_bool(self):
        with pytest.raises(IntegrityError):
            ColumnType.INT.validate(True, "c")

    def test_float_coerces_int(self):
        assert ColumnType.FLOAT.validate(5, "c") == 5.0

    def test_varchar(self):
        assert ColumnType.VARCHAR.validate("Bob", "c") == "Bob"

    def test_varchar_rejects_int(self):
        with pytest.raises(IntegrityError):
            ColumnType.VARCHAR.validate(3, "c")

    def test_date_from_string(self):
        assert ColumnType.DATE.validate("1970-01-02", "c") == 1

    def test_date_now_string(self):
        assert ColumnType.DATE.validate("now", "c") == FOREVER

    def test_date_from_int_passthrough(self):
        assert ColumnType.DATE.validate(100, "c") == 100

    def test_date_bad_string(self):
        with pytest.raises(IntegrityError):
            ColumnType.DATE.validate("yesterday-ish", "c")

    def test_blob(self):
        assert ColumnType.BLOB.validate(bytearray(b"x"), "c") == b"x"

    def test_null_passes_all(self):
        for ct in ColumnType:
            assert ct.validate(None, "c") is None


class TestTableSchema:
    def test_positions(self):
        schema = make_schema()
        assert schema.position("salary") == 2

    def test_unknown_column_raises(self):
        with pytest.raises(IntegrityError):
            make_schema().position("nope")

    def test_has_column(self):
        assert make_schema().has_column("name")
        assert not make_schema().has_column("nope")

    def test_validate_row(self):
        schema = make_schema()
        row = schema.validate_row((1, "Bob", 60000, "1995-01-01"))
        assert row[3] == ColumnType.DATE.validate("1995-01-01", "hired")

    def test_wrong_arity(self):
        with pytest.raises(IntegrityError):
            make_schema().validate_row((1, "Bob"))

    def test_not_null_enforced(self):
        with pytest.raises(IntegrityError):
            make_schema().validate_row((None, "Bob", 1.0, 0))

    def test_key_of(self):
        schema = make_schema()
        assert schema.key_of((7, "Bob", 1.0, 0)) == (7,)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(IntegrityError):
            TableSchema("t", [Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_pk_must_exist(self):
        with pytest.raises(IntegrityError):
            TableSchema("t", [Column("a", ColumnType.INT)], primary_key=("b",))
