"""Tests for Table and Database behaviour: CRUD, indexes, triggers, log."""

import pytest

from repro.errors import CatalogError, IntegrityError
from repro.rdb import ColumnType, Database


@pytest.fixture
def db():
    return Database()


@pytest.fixture
def emp(db):
    table = db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    return table


class TestCrud:
    def test_insert_and_scan(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.insert((2, "Ann", 70000))
        assert [r[1] for r in emp.rows()] == ["Bob", "Ann"]
        assert emp.row_count == 2

    def test_duplicate_pk_rejected(self, emp):
        emp.insert((1, "Bob", 60000))
        with pytest.raises(IntegrityError):
            emp.insert((1, "Evil", 0))

    def test_lookup_pk(self, emp):
        emp.insert((5, "Eve", 1))
        rid = emp.lookup_pk((5,))
        assert emp.read(rid) == (5, "Eve", 1)
        assert emp.lookup_pk((99,)) is None

    def test_update_where(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.insert((2, "Ann", 70000))
        changed = emp.update_where(lambda r: r["name"] == "Bob", {"salary": 66000})
        assert changed == 1
        assert sorted(r[2] for r in emp.rows()) == [66000, 70000]

    def test_delete_where(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.insert((2, "Ann", 70000))
        assert emp.delete_where(lambda r: r["salary"] > 65000) == 1
        assert [r[1] for r in emp.rows()] == ["Bob"]

    def test_update_keeps_pk_index_consistent(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.update_where(lambda r: r["id"] == 1, {"name": "Robert" * 30})
        rid = emp.lookup_pk((1,))
        assert emp.read(rid)[1] == "Robert" * 30

    def test_type_validation_on_insert(self, emp):
        with pytest.raises(IntegrityError):
            emp.insert((1, 42, 60000))

    def test_truncate(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.truncate()
        assert emp.row_count == 0
        assert emp.lookup_pk((1,)) is None


class TestIndexes:
    def test_create_index_and_scan(self, emp):
        for i in range(20):
            emp.insert((i, f"n{i}", i * 100))
        emp.create_index("emp_salary", ("salary",))
        rows = [row for _, row in emp.index_scan("emp_salary", (500,), (900,))]
        assert [r[2] for r in rows] == [500, 600, 700, 800, 900]

    def test_index_built_over_existing_rows(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.create_index("by_name", ("name",))
        rows = [row for _, row in emp.index_scan("by_name", ("Bob",), ("Bob",))]
        assert rows == [(1, "Bob", 60000)]

    def test_index_maintained_on_update_delete(self, emp):
        emp.insert((1, "Bob", 60000))
        emp.create_index("by_name", ("name",))
        emp.update_where(lambda r: r["id"] == 1, {"name": "Bobby"})
        assert [r for _, r in emp.index_scan("by_name", ("Bob",), ("Bob",))] == []
        assert len(list(emp.index_scan("by_name", ("Bobby",), ("Bobby",)))) == 1
        emp.delete_where(lambda r: True)
        assert list(emp.index_scan("by_name")) == []

    def test_unique_index(self, emp):
        emp.create_index("uq_name", ("name",), unique=True)
        emp.insert((1, "Bob", 1))
        with pytest.raises(IntegrityError):
            emp.insert((2, "Bob", 2))

    def test_find_index_prefix(self, emp):
        emp.create_index("comp", ("name", "salary"))
        assert emp.find_index(("name",)) is not None
        assert emp.find_index(("salary",)) is None

    def test_duplicate_index_name(self, emp):
        emp.create_index("i", ("name",))
        with pytest.raises(CatalogError):
            emp.create_index("i", ("salary",))

    def test_drop_index(self, emp):
        emp.create_index("i", ("name",))
        emp.drop_index("i")
        with pytest.raises(CatalogError):
            emp.drop_index("i")


class TestBulkInsert:
    def test_insert_many_equals_sequential_inserts(self, emp):
        rows = [(i, f"n{i}", i * 100) for i in range(50)]
        emp.create_index("by_salary", ("salary",))
        rids = emp.insert_many(rows)
        assert [row for _, row in emp.scan()] == rows
        assert emp.read(rids[7]) == rows[7]
        # indexes were maintained per row
        hit = [r for _, r in emp.index_scan("by_salary", (700,), (700,))]
        assert hit == [(7, "n7", 700)]

    def test_insert_many_rejects_duplicate_pk(self, emp):
        emp.insert((1, "Bob", 1))
        with pytest.raises(IntegrityError):
            emp.insert_many([(2, "A", 2), (1, "dup", 3)])
        with pytest.raises(IntegrityError):
            emp.insert_many([(3, "B", 4), (3, "B-again", 5)])

    def test_insert_many_fires_triggers(self, emp):
        seen = []
        emp.add_trigger(lambda op, row, old: seen.append((op, row[0])))
        emp.insert_many([(1, "a", 1), (2, "b", 2)])
        assert seen == [("insert", 1), ("insert", 2)]

    def test_insert_many_with_payloads_clones_bytes(self, emp):
        from repro.storage.record import encode_record

        rows = [(1, "a", 10), (2, "b", 20)]
        emp.insert_many(
            rows, validated=True, payloads=[encode_record(r) for r in rows]
        )
        assert [row for _, row in emp.scan()] == rows

    def test_prune_empty_pages_preserves_content_and_indexes(self, emp):
        emp.create_index("by_salary", ("salary",))
        rows = [(i, "pad" * 40, i) for i in range(400)]
        emp.insert_many(rows)
        emp.delete_where(lambda r: r["id"] < 390)
        assert emp.prune_empty_pages() > 0
        kept = [row for _, row in emp.scan()]
        assert kept == rows[390:]
        # rids did not move: the index still resolves every survivor
        for i in range(390, 400):
            hit = [r for _, r in emp.index_scan("by_salary", (i,), (i,))]
            assert hit == [rows[i]]


class TestTriggers:
    def test_insert_trigger_fires(self, emp):
        events = []
        emp.add_trigger(lambda op, row, old: events.append((op, row, old)))
        emp.insert((1, "Bob", 60000))
        assert events == [("insert", (1, "Bob", 60000), None)]

    def test_update_trigger_sees_old_row(self, emp):
        events = []
        emp.insert((1, "Bob", 60000))
        emp.add_trigger(lambda op, row, old: events.append((op, row, old)))
        emp.update_where(lambda r: r["id"] == 1, {"salary": 61000})
        assert events == [("update", (1, "Bob", 61000), (1, "Bob", 60000))]

    def test_delete_trigger(self, emp):
        events = []
        emp.insert((1, "Bob", 60000))
        emp.add_trigger(lambda op, row, old: events.append(op))
        emp.delete_where(lambda r: True)
        assert events == ["delete"]

    def test_remove_trigger(self, emp):
        events = []
        cb = lambda op, row, old: events.append(op)  # noqa: E731
        emp.add_trigger(cb)
        emp.remove_trigger(cb)
        emp.insert((1, "Bob", 60000))
        assert events == []


class TestDatabase:
    def test_catalog(self, db, emp):
        assert db.has_table("employee")
        assert db.tables() == ["employee"]
        with pytest.raises(CatalogError):
            db.table("missing")

    def test_duplicate_table(self, db, emp):
        with pytest.raises(CatalogError):
            db.create_table("employee", [("x", ColumnType.INT)])

    def test_drop_table(self, db, emp):
        db.drop_table("employee")
        assert not db.has_table("employee")

    def test_clock(self, db):
        db.set_date("1995-06-01")
        before = db.current_date
        db.advance_days(10)
        assert db.current_date == before + 10
        with pytest.raises(CatalogError):
            db.set_date("1990-01-01")

    def test_update_log_manual(self, db):
        db.update_log.append(db.current_date, "t", "insert", (1,))
        db.update_log.append(db.current_date, "t", "delete", (1,))
        assert len(db.update_log.pending()) == 2
        drained = db.update_log.drain()
        assert [e.op for e in drained] == ["insert", "delete"]
        assert db.update_log.pending() == []

    def test_storage_report(self, db, emp):
        emp.insert((1, "Bob", 60000))
        report = db.storage_report()
        assert report["employee"] > 0
        assert db.storage_bytes() >= report["employee"]

    def test_reset_caches_is_cold(self, db, emp):
        emp.insert((1, "Bob", 60000))
        db.reset_caches()
        db.pool.reset_stats()
        list(emp.rows())
        assert db.pool.stats.misses >= 1

    def test_function_registry(self, db):
        db.register_function("toverlaps", lambda *a: True)
        assert db.function("TOVERLAPS") is not None
        assert db.function("missing") is None

    def test_table_function_registry(self, db):
        db.register_table_function("unzip", lambda blob: iter(()))
        assert db.table_function("UNZIP") is not None
