"""Tests for catalog persistence: save, reopen, keep working."""

import pytest

from repro.errors import CatalogError, StorageError
from repro.rdb import ColumnType, Database


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "archive.db")


def build(path):
    db = Database(path)
    db.set_date("1995-06-01")
    db.create_table(
        "employee",
        [("id", ColumnType.INT), ("name", ColumnType.VARCHAR),
         ("salary", ColumnType.INT)],
        primary_key=("id",),
    )
    db.sql("CREATE INDEX emp_sal ON employee (salary)")
    db.sql(
        "INSERT INTO employee VALUES (1, 'Bob', 60000), (2, 'Ann', 72000)"
    )
    return db


def test_save_and_reopen_roundtrip(db_path):
    db = build(db_path)
    db.save()
    db.close()

    again = Database.open(db_path)
    assert again.tables() == ["employee"]
    assert again.sql("SELECT name FROM employee ORDER BY id").column(0) == [
        "Bob", "Ann",
    ]


def test_clock_restored(db_path):
    db = build(db_path)
    db.save()
    db.close()
    again = Database.open(db_path)
    from repro.util.timeutil import format_date

    assert format_date(again.current_date) == "1995-06-01"


def test_indexes_restored_and_usable(db_path):
    db = build(db_path)
    db.save()
    db.close()
    again = Database.open(db_path)
    table = again.table("employee")
    assert "emp_sal" in table.indexes
    result = again.sql("SELECT name FROM employee WHERE salary = 72000")
    assert result.scalar() == "Ann"


def test_pk_enforced_after_reopen(db_path):
    db = build(db_path)
    db.save()
    db.close()
    again = Database.open(db_path)
    from repro.errors import IntegrityError

    with pytest.raises(IntegrityError):
        again.table("employee").insert((1, "Dup", 1))


def test_writes_after_reopen_persist(db_path):
    db = build(db_path)
    db.save()
    db.close()
    again = Database.open(db_path)
    again.sql("INSERT INTO employee VALUES (3, 'Carl', 55000)")
    again.save()
    again.close()
    third = Database.open(db_path)
    assert third.sql("SELECT count(*) FROM employee").scalar() == 3


def test_blobs_survive(db_path):
    db = build(db_path)
    blob_id = db.blobs.put(b"compressed segment data")
    db.save()
    db.close()
    again = Database.open(db_path)
    assert again.blobs.get(blob_id) == b"compressed segment data"


def test_deleted_rows_stay_deleted(db_path):
    db = build(db_path)
    db.sql("DELETE FROM employee WHERE id = 1")
    db.save()
    db.close()
    again = Database.open(db_path)
    assert again.sql("SELECT count(*) FROM employee").scalar() == 1


def test_memory_database_cannot_save():
    with pytest.raises(StorageError):
        Database().save()


def test_open_without_sidecar_raises(db_path):
    db = build(db_path)
    db.close()  # never saved
    with pytest.raises(CatalogError):
        Database.open(db_path)
