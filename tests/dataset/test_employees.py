"""Tests for the synthetic employee dataset generator."""

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.dataset import (
    DEPARTMENTS,
    TITLES,
    DailyUpdateBatch,
    EmployeeHistoryGenerator,
    single_salary_update,
)
from repro.rdb import Database
from repro.util.timeutil import parse_date


@pytest.fixture
def generator():
    return EmployeeHistoryGenerator(employees=12, years=3, seed=99)


class TestEventStream:
    def test_deterministic(self, generator):
        first = list(generator.events())
        second = list(EmployeeHistoryGenerator(employees=12, years=3, seed=99).events())
        assert first == second

    def test_different_seeds_differ(self, generator):
        other = EmployeeHistoryGenerator(employees=12, years=3, seed=100)
        assert list(generator.events()) != list(other.events())

    def test_initial_cohort(self, generator):
        events = list(generator.events())
        hires = [e for e in events if e.op == "hire"]
        assert len(hires) >= 12
        assert all(e.date == generator.start for e in hires[:12])

    def test_events_in_chronological_order(self, generator):
        dates = [e.date for e in generator.events()]
        assert dates == sorted(dates)

    def test_event_kinds(self, generator):
        kinds = {e.op for e in generator.events()}
        assert {"hire", "raise"}.issubset(kinds)

    def test_raises_change_salary(self, generator):
        for event in generator.events():
            if event.op == "raise":
                assert event.payload["salary"] > 0

    def test_titles_and_departments_from_catalog(self, generator):
        for event in generator.events():
            if event.op == "title":
                assert event.payload["title"] in TITLES
            if event.op == "move":
                assert event.payload["deptno"] in DEPARTMENTS

    def test_scale_multiplies_population(self):
        small = EmployeeHistoryGenerator(employees=10, years=1, scale=1)
        large = EmployeeHistoryGenerator(employees=10, years=1, scale=3)
        assert large.population == 3 * small.population

    def test_no_events_for_departed_employees(self, generator):
        departed = set()
        for event in generator.events():
            if event.op == "leave":
                departed.add(event.employee_id)
            elif event.op != "hire":
                assert event.employee_id not in departed

    def test_date_str(self, generator):
        event = next(iter(generator.events()))
        assert event.date_str == "1985-01-01"


class TestApplication:
    def test_apply_to_database(self, generator):
        db = Database()
        db.set_date("1985-01-01")
        EmployeeHistoryGenerator.create_current_table(db)
        count = generator.apply_to(db)
        assert count > 12
        assert db.table("employee").row_count > 0

    def test_apply_with_archis_builds_history(self, generator):
        db = Database()
        db.set_date("1985-01-01")
        EmployeeHistoryGenerator.create_current_table(db)
        archis = ArchIS(db, config=ArchISConfig(profile="db2", umin=None))
        archis.track_table("employee")
        generator.apply_to(db)
        salary_history = archis.history("employee", "salary")
        raises = sum(1 for e in generator.events() if e.op == "raise")
        assert len(salary_history) >= 12 + raises - 1

    def test_known_employee_exists(self, generator):
        db = Database()
        db.set_date("1985-01-01")
        EmployeeHistoryGenerator.create_current_table(db)
        generator.apply_to(db)
        # present in history even if they left
        assert generator.known_employee_id() == 100001

    def test_helper_dates_ordered(self, generator):
        assert (
            parse_date(generator.mid_history_date())
            < parse_date(generator.late_history_date())
            < parse_date(generator.end_date())
        )


class TestWorkload:
    @pytest.fixture
    def populated(self, generator):
        db = Database()
        db.set_date("1985-01-01")
        EmployeeHistoryGenerator.create_current_table(db)
        generator.apply_to(db)
        return db

    def test_daily_batch_applies_changes(self, populated):
        populated.advance_days(1)
        batch = DailyUpdateBatch(raises=3, moves=1, hires=1)
        applied = batch.apply(populated)
        assert applied == 5

    def test_daily_batch_deterministic_given_date(self, generator):
        results = []
        for _ in range(2):
            db = Database()
            db.set_date("1985-01-01")
            EmployeeHistoryGenerator.create_current_table(db)
            generator.apply_to(db)
            db.advance_days(1)
            DailyUpdateBatch(raises=3, moves=1, hires=1).apply(db)
            results.append(sorted(db.table("employee").rows()))
        assert results[0] == results[1]

    def test_single_salary_update(self, populated):
        row = next(iter(populated.table("employee").rows()))
        employee_id, old_salary = row[0], row[2]
        single_salary_update(populated, employee_id, factor=1.10)
        rid = populated.table("employee").lookup_pk((employee_id,))
        assert populated.table("employee").read(rid)[2] == int(old_salary * 1.1)

    def test_single_update_missing_employee(self, populated):
        with pytest.raises(ValueError):
            single_salary_update(populated, 999999)

    def test_batch_on_empty_table(self):
        db = Database()
        EmployeeHistoryGenerator.create_current_table(db)
        assert DailyUpdateBatch().apply(db) == 0
