"""Quantile estimation on histograms: edge cases and labeled families."""

import pytest

from repro.obs.metrics import Histogram, LabeledHistogram, MetricsRegistry


class TestHistogramQuantile:
    def test_empty_histogram_is_zero(self):
        h = Histogram("h", (0.1, 1.0))
        assert h.quantile(0.5) == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.quantiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_out_of_range_q_raises(self):
        h = Histogram("h", (0.1,))
        with pytest.raises(ValueError):
            h.quantile(-0.01)
        with pytest.raises(ValueError):
            h.quantile(1.01)

    def test_single_bucket_interpolates_from_zero(self):
        h = Histogram("h", (1.0, 2.0))
        for _ in range(4):
            h.observe(0.5)  # all land in the first bucket [0, 1.0]
        # rank q*4 of 4 observations, linear within [0, 1.0]
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)
        assert h.quantile(0.25) == pytest.approx(0.25)

    def test_interpolation_across_buckets(self):
        h = Histogram("h", (0.01, 0.1, 1.0))
        h.observe(0.005)  # bucket [0, 0.01]
        h.observe(0.05)  # bucket (0.01, 0.1]
        h.observe(0.5)  # bucket (0.1, 1.0]
        h.observe(0.6)  # bucket (0.1, 1.0]
        # rank 2 of 4 = upper edge of the second bucket
        assert h.quantile(0.5) == pytest.approx(0.1)
        # rank 3 of 4 = halfway through the (0.1, 1.0] bucket
        assert h.quantile(0.75) == pytest.approx(0.55)

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram("h", (0.1, 1.0))
        h.observe(50.0)
        h.observe(100.0)
        # everything is in the +Inf bucket: the estimate cannot exceed
        # the last finite bound
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) == 1.0

    def test_zero_quantile_of_populated_histogram(self):
        h = Histogram("h", (1.0,))
        h.observe(0.5)
        assert h.quantile(0.0) == 0.0

    def test_quantiles_keys(self):
        h = Histogram("h")
        h.observe(0.02)
        assert set(h.quantiles()) == {"p50", "p95", "p99"}


class TestLabeledHistogram:
    def test_aggregate_combines_labels(self):
        lh = LabeledHistogram("req", (0.1, 1.0), label_key="op")
        lh.observe("sql", 0.05)
        lh.observe("ping", 0.05)
        assert lh.count == 2
        assert lh.aggregate.count == 2
        assert [label for label, _ in lh.labels()] == ["ping", "sql"]
        assert lh.quantile(0.5) == pytest.approx(0.05)

    def test_registry_snapshot_carries_quantiles_and_labels(self):
        registry = MetricsRegistry()
        lh = registry.labeled_histogram("req.seconds", (0.1,), label_key="op")
        lh.observe("sql", 0.05)
        h = registry.histogram("plain.seconds", (0.1,))
        h.observe(0.05)
        snap = registry.snapshot()
        assert {"p50", "p95", "p99"} <= set(snap["plain.seconds"])
        assert snap["req.seconds"]["count"] == 1
        assert snap["req.seconds"]["labels"]["sql"]["count"] == 1
        assert {"p50", "p95", "p99"} <= set(
            snap["req.seconds"]["labels"]["sql"]
        )

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        lh = registry.labeled_histogram("req.seconds", label_key="op")
        lh.observe("sql", 0.05)
        registry.reset()
        assert lh.count == 0
        assert lh.aggregate.count == 0
        # label families survive reset with zeroed counts
        assert registry.labeled_histogram(
            "req.seconds", label_key="op"
        ) is lh
