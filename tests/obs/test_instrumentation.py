"""End-to-end metric checks over the track -> update -> freeze -> compress
pipeline, plus the buffer-pool accounting invariants the harness relies on."""

from repro.bench import build_setup, default_queries, run_archis_cold
from repro.obs import get_registry

from tests.archis.conftest import make_archis
from tests.archis.test_clustering import churn


def snapshot(*names):
    snap = get_registry().snapshot()
    return {name: snap.get(name, 0) for name in names}


class TestPipelineMetrics:
    def test_full_cycle_counts(self):
        before = snapshot(
            "tracker.changes_applied",
            "clustering.segments_frozen",
            "blockzip.bytes_in",
            "blockzip.bytes_out",
            "blockzip.blocks",
            "blockzip.tables_compressed",
        )
        archis = make_archis(profile="atlas", umin=0.4, min_segment_rows=8)
        churn(archis, employees=10, rounds=12)
        archis.compress_archive()
        after = snapshot(*before)
        delta = {k: after[k] - before[k] for k in before}

        # 10 inserts + 120 updates flowed through the tracker
        assert delta["tracker.changes_applied"] == 130
        assert delta["clustering.segments_frozen"] == archis.segments.freeze_count
        assert archis.segments.freeze_count > 0
        assert delta["blockzip.blocks"] > 0
        assert delta["blockzip.bytes_in"] > delta["blockzip.bytes_out"] > 0
        assert delta["blockzip.tables_compressed"] == len(
            archis.archive.compressed_tables
        )

    def test_query_counters_move(self):
        before = snapshot(
            "archis.xquery.count", "sql.statements", "sql.rows_scanned"
        )
        archis = make_archis()
        emp = archis.db.table("employee")
        emp.insert((1, "Ann", 50000, "Engineer", "d01"))
        archis.apply_pending()
        archis.xquery(
            'for $s in doc("employees.xml")/employees/employee/salary '
            "return $s",
            allow_fallback=False,
        )
        after = snapshot(*before)
        assert after["archis.xquery.count"] == before["archis.xquery.count"] + 1
        assert after["sql.statements"] > before["sql.statements"]
        assert after["sql.rows_scanned"] > before["sql.rows_scanned"]

    def test_translate_histogram_observes(self):
        histogram = get_registry().histogram("xquery.translate.seconds")
        count_before = histogram.count
        archis = make_archis()
        archis.translate(
            'for $e in doc("employees.xml")/employees/employee return $e/name'
        )
        assert histogram.count == count_before + 1


class TestBufferAccounting:
    def test_global_misses_track_pool_stats(self):
        archis = make_archis()
        emp = archis.db.table("employee")
        for i in range(20):
            emp.insert((i, f"e{i}", 1000 + i, "T", "d01"))
        archis.apply_pending()
        misses = get_registry().counter("buffer.misses")
        archis.reset_caches()
        pool = archis.db.pool.stats
        global_before, pool_before = misses.value, pool.misses
        archis.xquery(
            'for $s in doc("employees.xml")/employees/employee/salary '
            "return $s",
            allow_fallback=False,
        )
        assert misses.value - global_before == pool.misses - pool_before
        assert pool.misses - pool_before > 0

    def test_reset_stats_mutates_in_place(self):
        # the regression: reset_stats used to rebind self.stats, leaving
        # previously captured references counting a dead object
        archis = make_archis()
        pool = archis.db.pool
        held = pool.stats
        archis.db.table("employee").insert((1, "A", 1, "T", "d"))
        pool.reset_stats()
        assert pool.stats is held
        assert held.hits == 0 and held.misses == 0


class TestHarnessUsesRegistry:
    def test_physical_reads_match_global_counter(self):
        setup = build_setup(employees=10, years=2)
        query = default_queries(setup.generator)[0]
        misses = get_registry().counter("buffer.misses")
        before = misses.value
        measurement = run_archis_cold(setup.archis, query)
        assert measurement.physical_reads == misses.value - before
        assert measurement.physical_reads > 0
        assert measurement.seconds > 0
        assert 0.0 <= measurement.cache_hit_rate <= 1.0
        assert measurement.translate_seconds > 0
        assert measurement.execute_seconds > 0
