"""Tests for the span tracer: nesting, timing, ring buffer, capture."""

import pytest

from repro.obs.tracer import Span, Tracer


@pytest.fixture
def tracer():
    return Tracer(capacity=4)


class TestDisabled:
    def test_disabled_by_default(self, tracer):
        assert tracer.enabled is False

    def test_disabled_span_is_shared_noop(self, tracer):
        a = tracer.span("x", foo=1)
        b = tracer.span("y")
        assert a is b  # one shared handle, zero allocation per call

    def test_disabled_span_records_nothing(self, tracer):
        with tracer.span("query") as span:
            span.set("rows", 3)
        assert len(tracer.finished) == 0


class TestNesting:
    def test_children_linked_and_timed(self, tracer):
        tracer.enable()
        with tracer.span("root") as root:
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b") as b:
                with tracer.span("grandchild"):
                    pass
                b.set("depth", 2)
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert root.children[1].children[0].name == "grandchild"
        assert root.duration > 0
        # a parent contains its children in time
        child_total = sum(c.duration for c in root.children)
        assert root.duration >= child_total

    def test_only_roots_reach_finished(self, tracer):
        tracer.enable()
        with tracer.span("root"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished] == ["root"]

    def test_error_recorded_as_attr(self, tracer):
        tracer.enable()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("bad page")
        (span,) = tracer.finished
        assert span.attrs["error"] == "ValueError: bad page"
        assert span.duration >= 0

    def test_ring_buffer_bounded(self, tracer):
        tracer.enable()
        for i in range(10):
            with tracer.span(f"q{i}"):
                pass
        assert len(tracer.finished) == 4
        assert [s.name for s in tracer.finished] == ["q6", "q7", "q8", "q9"]


class TestCapture:
    def test_capture_collects_roots_and_restores_state(self, tracer):
        assert not tracer.enabled
        with tracer.capture() as roots:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        assert [s.name for s in roots] == ["a", "b"]
        assert not tracer.enabled  # restored
        assert tracer.span("after") is tracer.span("again")  # noop again

    def test_capture_preserves_enabled(self, tracer):
        tracer.enable()
        with tracer.capture():
            pass
        assert tracer.enabled

    def test_nested_captures_each_see_their_roots(self, tracer):
        with tracer.capture() as outer:
            with tracer.span("first"):
                pass
            with tracer.capture() as inner:
                with tracer.span("second"):
                    pass
            assert [s.name for s in inner] == ["second"]
        assert [s.name for s in outer] == ["first", "second"]


class TestSpanHelpers:
    def test_walk_and_stage_seconds(self):
        root = Span("root")
        a = Span("stage")
        b = Span("stage")
        c = Span("other")
        a.start_time, a.end_time = 0.0, 1.0
        b.start_time, b.end_time = 1.0, 1.5
        c.start_time, c.end_time = 0.0, 0.25
        root.children = [a, c]
        a.children = [b]
        assert [s.name for s in root.walk()] == [
            "root", "stage", "stage", "other"
        ]
        assert root.stage_seconds("stage") == pytest.approx(1.5)
        assert root.stage_seconds("missing") == 0.0

    def test_to_dict_shape(self):
        root = Span("root", {"sql": "SELECT 1"})
        root.children.append(Span("child"))
        data = root.to_dict()
        assert data["name"] == "root"
        assert data["attrs"] == {"sql": "SELECT 1"}
        assert data["children"][0]["name"] == "child"
        assert set(data) == {
            "name",
            "seconds",
            "attrs",
            "children",
            "trace_id",
            "span_id",
            "parent_id",
        }
