"""Tests for ArchIS.explain(), stats() and the slow-query log."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.obs import SlowQueryLog, get_tracer

from tests.archis.conftest import load_bob_history, make_archis

SNAPSHOT_QUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary'
    '[tstart(.) <= xs:date("1995-07-01") and tend(.) >= xs:date("1995-07-01")] '
    "return $s"
)
UNSUPPORTED_QUERY = (
    'for $e in doc("employees.xml")/employees/employee '
    "where every $s in $e/salary satisfies $s > 50000 "
    "return $e/name"
)


@pytest.fixture
def loaded():
    archis = make_archis()
    load_bob_history(archis)
    return archis


class TestExplain:
    def test_translated_query_report(self, loaded):
        loaded.reset_caches()
        result = loaded.explain(SNAPSHOT_QUERY)
        assert result.fallback_reason is None
        assert "SELECT" in result.sql.upper()
        assert result.result_count == len(loaded.xquery(SNAPSHOT_QUERY).rows)
        assert result.seconds > 0
        assert result.physical_reads > 0
        stages = result.stages()
        assert stages["xquery.translate"] > 0
        assert stages["sql.execute"] > 0

    def test_span_tree_shape(self, loaded):
        tree = loaded.explain(SNAPSHOT_QUERY).span_tree()
        assert tree["name"] == "archis.xquery"
        child_names = [c["name"] for c in tree["children"]]
        assert "xquery.translate" in child_names
        assert "sql.execute" in child_names

    def test_fallback_query_reports_reason(self, loaded):
        result = loaded.explain(UNSUPPORTED_QUERY)
        assert result.sql is None
        assert result.fallback_reason
        assert "xquery.native" in result.stages()

    def test_no_fallback_raises_through(self, loaded):
        with pytest.raises(UnsupportedQueryError):
            loaded.explain(UNSUPPORTED_QUERY, allow_fallback=False)

    def test_explain_leaves_tracer_disabled(self, loaded):
        assert not get_tracer().enabled
        loaded.explain(SNAPSHOT_QUERY)
        assert not get_tracer().enabled

    def test_format_is_readable(self, loaded):
        text = loaded.explain(SNAPSHOT_QUERY).format()
        assert "plan:  SQL/XML translation" in text
        assert "spans:" in text
        assert "physical reads" in text


class TestStats:
    def test_stats_snapshot_shape(self, loaded):
        loaded.xquery(SNAPSHOT_QUERY)
        stats = loaded.stats()
        assert stats["metrics"]["archis.xquery.count"] >= 1
        assert set(stats["buffer"]) == {"hits", "misses", "hit_rate"}
        assert stats["relations"] == ["employee"]
        assert isinstance(stats["slow_queries"], list)


class TestSlowQueryLog:
    def test_threshold_zero_records_everything(self, loaded):
        loaded.slow_query_log = SlowQueryLog(threshold=0.0)
        loaded.xquery(SNAPSHOT_QUERY)
        entries = list(loaded.slow_query_log)
        assert len(entries) == 1
        assert entries[0].query == SNAPSHOT_QUERY
        assert entries[0].seconds > 0
        assert entries[0].sql is not None

    def test_none_threshold_disables(self):
        log = SlowQueryLog(threshold=None)
        assert log.record("q", 100.0) is False
        assert len(log) == 0

    def test_capacity_bounds_entries(self):
        log = SlowQueryLog(threshold=0.0, capacity=3)
        for i in range(10):
            log.record(f"q{i}", 1.0)
        assert [e.query for e in log] == ["q7", "q8", "q9"]
