"""Prometheus exposition: golden bytes, determinism, inventory HELP."""

from repro.obs import METRIC_INVENTORY, format_metrics, get_registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import metric_name, render_prometheus

GOLDEN = """\
# TYPE repro_latency_seconds histogram
repro_latency_seconds_bucket{le="0.01"} 1
repro_latency_seconds_bucket{le="0.1"} 2
repro_latency_seconds_bucket{le="1"} 2
repro_latency_seconds_bucket{le="+Inf"} 3
repro_latency_seconds_sum 5.055
repro_latency_seconds_count 3
# HELP repro_latency_seconds_quantile bucket-interpolated quantile estimates
# TYPE repro_latency_seconds_quantile gauge
repro_latency_seconds_quantile{quantile="0.5"} 0.05500000000000001
repro_latency_seconds_quantile{quantile="0.95"} 1
repro_latency_seconds_quantile{quantile="0.99"} 1
# TYPE repro_ops counter
repro_ops{label="read"} 2
repro_ops{label="write"} 1
# TYPE repro_queue_depth gauge
repro_queue_depth 2.5
# TYPE repro_request_seconds histogram
repro_request_seconds_bucket{op="ping",le="0.1"} 1
repro_request_seconds_bucket{op="ping",le="1"} 1
repro_request_seconds_bucket{op="ping",le="+Inf"} 1
repro_request_seconds_sum{op="ping"} 0.01
repro_request_seconds_count{op="ping"} 1
repro_request_seconds_bucket{op="sql",le="0.1"} 1
repro_request_seconds_bucket{op="sql",le="1"} 1
repro_request_seconds_bucket{op="sql",le="+Inf"} 1
repro_request_seconds_sum{op="sql"} 0.05
repro_request_seconds_count{op="sql"} 1
# HELP repro_request_seconds_quantile bucket-interpolated quantile estimates
# TYPE repro_request_seconds_quantile gauge
repro_request_seconds_quantile{quantile="0.5"} 0.05
repro_request_seconds_quantile{quantile="0.95"} 0.095
repro_request_seconds_quantile{quantile="0.99"} 0.099
# HELP repro_requests total requests
# TYPE repro_requests counter
repro_requests 3
"""


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("requests").inc(3)
    registry.gauge("queue.depth").set(2.5)
    ops = registry.labeled_counter("ops")
    ops.inc("read")
    ops.inc("write")
    ops.inc("read")
    latency = registry.histogram("latency.seconds", (0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 5.0):
        latency.observe(value)
    requests = registry.labeled_histogram(
        "request.seconds", (0.1, 1.0), label_key="op"
    )
    requests.observe("sql", 0.05)
    requests.observe("ping", 0.01)
    return registry


class TestRenderPrometheus:
    def test_golden_exposition(self):
        registry = build_registry()
        text = render_prometheus(
            registry, help_texts={"requests": "total requests"}
        )
        assert text == GOLDEN

    def test_deterministic_across_calls(self):
        registry = build_registry()
        first = render_prometheus(registry, help_texts={})
        second = render_prometheus(registry, help_texts={})
        assert first == second

    def test_process_registry_uses_inventory_help(self):
        # the process registry hoists wal.frames at import time; its
        # exposition line must carry the documented HELP text
        text = render_prometheus(get_registry())
        assert (
            f"# HELP {metric_name('wal.frames')} "
            f"{METRIC_INVENTORY['wal.frames']}" in text
        )
        assert text.endswith("\n")

    def test_metric_name_sanitizes(self):
        assert metric_name("server.request.seconds") == (
            "repro_server_request_seconds"
        )
        assert metric_name("a-b c") == "repro_a_b_c"


class TestCliDeterminism:
    def test_format_metrics_is_deterministic_and_sorted(self):
        registry = build_registry()
        first = format_metrics(registry)
        second = format_metrics(registry)
        assert first == second
        names = [
            line.split()[0]
            for line in first.splitlines()[1:]
            if line and not line.startswith(" ")
        ]
        assert names == sorted(names)
