"""JSONL span export: one self-contained trace tree per line."""

import json

from repro.obs.export import JsonlSpanExporter, span_to_record
from repro.obs.tracer import Tracer


class TestSpanToRecord:
    def test_nested_tree_with_ids(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("root", op="sql") as root:
            with tracer.span("child"):
                pass
        record = span_to_record(root)
        assert record["name"] == "root"
        assert record["trace_id"] == root.trace_id
        assert record["parent_id"] is None
        assert record["attrs"] == {"op": "sql"}
        (child,) = record["children"]
        assert child["parent_id"] == root.span_id
        assert child["trace_id"] == root.trace_id

    def test_non_scalar_attrs_are_coerced(self):
        tracer = Tracer()
        tracer.enable()
        with tracer.span("root") as root:
            root.set("rows", [1, 2])
            root.set("ok", True)
        record = span_to_record(root)
        assert record["attrs"]["rows"] == "[1, 2]"
        assert record["attrs"]["ok"] is True


class TestJsonlSpanExporter:
    def test_exports_one_line_per_root(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        tracer = Tracer()
        tracer.enable()
        with JsonlSpanExporter(path) as exporter:
            tracer.add_exporter(exporter)
            try:
                for index in range(3):
                    with tracer.span(f"req{index}"):
                        with tracer.span("inner"):
                            pass
            finally:
                tracer.remove_exporter(exporter)
        with open(path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        assert [line["name"] for line in lines] == ["req0", "req1", "req2"]
        assert all(line["children"][0]["name"] == "inner" for line in lines)
        # only roots are exported — inner spans appear nested, not as lines
        assert all(line["parent_id"] is None for line in lines)

    def test_export_failure_never_raises(self):
        tracer = Tracer()
        tracer.enable()

        def broken(span):
            raise RuntimeError("sink died")

        tracer.add_exporter(broken)
        try:
            with tracer.span("survives"):
                pass
        finally:
            tracer.remove_exporter(broken)
        assert [s.name for s in tracer.finished] == ["survives"]

    def test_close_is_idempotent_and_blocks_writes(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        exporter = JsonlSpanExporter(path)
        exporter.close()
        exporter.close()
        tracer = Tracer()
        tracer.enable()
        tracer.add_exporter(exporter)
        with tracer.span("after-close"):
            pass
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == ""
