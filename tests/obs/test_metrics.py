"""Tests for the metrics registry: instruments, bucketing, reset identity."""

import pytest

from repro.obs.metrics import (
    DEFAULT_RATIO_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_reset(self, registry):
        c = registry.counter("reads")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.reset()
        assert c.value == 0

    def test_get_or_create_identity(self, registry):
        assert registry.counter("x") is registry.counter("x")
        assert registry.counter("x") is not registry.counter("y")


class TestLabeledCounter:
    def test_per_label_and_total(self, registry):
        fallbacks = registry.labeled_counter("xquery.fallback")
        fallbacks.inc("descendant axis")
        fallbacks.inc("descendant axis")
        fallbacks.inc("quantifier")
        assert fallbacks.values == {"descendant axis": 2, "quantifier": 1}
        assert fallbacks.total == 3


class TestGauge:
    def test_set(self, registry):
        g = registry.gauge("live_segno")
        g.set(7)
        assert g.value == 7


class TestHistogram:
    def test_bucketing_with_overflow(self):
        h = Histogram("t", bounds=(0.01, 0.1, 1.0))
        for value in (0.005, 0.01, 0.05, 0.5, 99.0):
            h.observe(value)
        buckets = dict(h.bucket_counts())
        assert buckets[0.01] == 2     # 0.005 and the inclusive bound 0.01
        assert buckets[0.1] == 1      # 0.05
        assert buckets[1.0] == 1      # 0.5
        assert buckets[float("inf")] == 1  # 99.0 overflows
        assert h.count == 5
        assert h.mean == pytest.approx(sum((0.005, 0.01, 0.05, 0.5, 99.0)) / 5)

    def test_bounds_are_sorted(self):
        h = Histogram("t", bounds=(1.0, 0.1))
        assert h.bounds == (0.1, 1.0)

    def test_ratio_buckets_cover_unit_interval(self):
        h = Histogram("r", bounds=DEFAULT_RATIO_BUCKETS)
        h.observe(0.35)
        assert dict(h.bucket_counts())[0.4] == 1


class TestRegistry:
    def test_snapshot_shape(self, registry):
        registry.counter("a").inc(2)
        registry.labeled_counter("b").inc("why")
        registry.gauge("c").set(1.5)
        registry.histogram("d", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["a"] == 2
        assert snap["b"] == {"why": 1}
        assert snap["c"] == 1.5
        assert snap["d"]["count"] == 1
        assert snap["d"]["buckets"] == [(1.0, 1), (float("inf"), 0)]
        assert list(snap) == sorted(snap)

    def test_reset_preserves_hoisted_references(self, registry):
        # Modules hoist instruments at import time; reset must zero the
        # same objects in place, not rebind fresh ones.
        hoisted = registry.counter("buffer.misses")
        hoisted.inc(10)
        registry.reset()
        assert hoisted.value == 0
        assert registry.counter("buffer.misses") is hoisted
        hoisted.inc()
        assert registry.snapshot()["buffer.misses"] == 1


def test_global_registry_is_singleton():
    assert get_registry() is get_registry()
