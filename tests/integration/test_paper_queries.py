"""The paper's Section 4 example queries (QUERY 1-8), end to end on the
native XQuery engine over the Figures 3-4 H-documents."""

import pytest

from repro.util.timeutil import parse_date
from repro.xmlkit import parse_xml
from repro.xquery import evaluate, make_context, parse_xquery

from tests.xquery.conftest import DEPTS_XML, EMPLOYEES_XML

TODAY = parse_date("1997-06-15")


@pytest.fixture(scope="module")
def ctx():
    docs = {
        "employees.xml": parse_xml(EMPLOYEES_XML),
        "depts.xml": parse_xml(DEPTS_XML),
        "emp.xml": parse_xml(EMPLOYEES_XML),
    }
    return make_context(docs, TODAY)


def run(query, ctx):
    return evaluate(parse_xquery(query), ctx)


def test_query1_temporal_projection(ctx):
    """Title history of Bob: already coalesced per title value."""
    out = run(
        'element title_history{ for $t in doc("employees.xml")/employees/'
        'employee[name="Bob"]/title return $t }',
        ctx,
    )
    history = out[0]
    assert history.name == "title_history"
    titles = [(e.text(), e.get("tstart"), e.get("tend")) for e in history.elements()]
    assert titles == [
        ("Engineer", "1995-01-01", "1995-09-30"),
        ("Sr Engineer", "1995-10-01", "1996-01-31"),
        ("TechLeader", "1996-02-01", "1996-12-31"),
    ]


def test_query2_temporal_snapshot(ctx):
    """Managers on 1994-05-06."""
    out = run(
        'for $m in doc("depts.xml")/depts/dept/mgrno'
        '[tstart(.)<=xs:date("1994-05-06") and tend(.) >= xs:date("1994-05-06")]'
        " return $m",
        ctx,
    )
    assert sorted(e.text() for e in out) == ["2501", "3402", "4748"]


def test_query3_temporal_slicing(ctx):
    """Employees who worked at any time in 1994-05-06 .. 1995-05-06."""
    out = run(
        'for $e in doc("employees.xml")/employees/employee[ toverlaps(.,'
        ' telement( xs:date("1994-05-06"), xs:date("1995-05-06") ) ) ]'
        " return $e/name",
        ctx,
    )
    assert sorted(e.text() for e in out) == ["Ann", "Bob", "Carl"]


def test_query4_temporal_join(ctx):
    """History of employees each manager manages."""
    out = run(
        'element manages{ for $d in doc("depts.xml")/depts/dept'
        " for $m in $d/mgrno return element manage {$d/deptno, $m,"
        ' element employees { for $e in doc("employees.xml")/employees/employee'
        " where $e/deptno = $d/deptno and not(empty(overlapinterval($e, $m)))"
        " return ($e/name, overlapinterval($e,$m)) }}}",
        ctx,
    )
    manages = out[0]
    assert manages.name == "manages"
    entries = manages.elements("manage")
    assert len(entries) == 4  # one per (dept, mgr) pair
    # d01 managed by 2501 contains Bob.  The paper's query overlaps the
    # *employee* element's interval with the manager's (the deptno equality
    # is existential), so the interval is Bob's whole employment clipped to
    # the manager's tenure: 1995-01-01 .. 1996-12-31.
    d01 = [
        m
        for m in entries
        if m.first("deptno") is not None and m.first("deptno").text() == "d01"
    ][0]
    employees = d01.first("employees")
    names = [e.text() for e in employees.elements("name")]
    assert names == ["Bob"]
    interval = employees.first("interval")
    assert interval.get("tstart") == "1995-01-01"
    assert interval.get("tend") == "1996-12-31"
    # the 1997-01-01 manager of d02 no longer overlaps Bob at all
    late_mgr = [
        m for m in entries if m.first("mgrno").text() == "1009"
    ][0]
    assert late_mgr.first("employees").elements() == []


def test_query5_temporal_aggregate(ctx):
    """History of the average salary."""
    out = run(
        'let $s := document("emp.xml")/employees/employee/salary return tavg($s)',
        ctx,
    )
    assert out
    # Before 1993-03-01 only Bob has no salary yet; first period starts with
    # Ann's 65000 on 1993-03-01.
    first = out[0]
    assert first.get("tstart") == "1993-03-01"
    assert float(first.text()) == 65000.0


def test_query6_restructuring(ctx):
    """Max continuous period of Bob without changing title or department.

    Note: the paper's text uses $e/dept, but the H-document element is
    deptno (paper Figure 3); we use deptno.
    """
    out = run(
        'for $e in doc("emp.xml")/employees/employee[name="Bob"]'
        " let $d := $e/deptno let $t := $e/title"
        " let $overlaps := restructure($d, $t)"
        " return $overlaps",
        ctx,
    )
    # restructure returns coalesced overlap intervals; Bob's dept and title
    # histories cover his whole employment continuously.
    assert len(out) == 1
    assert out[0].get("tstart") == "1995-01-01"
    assert out[0].get("tend") == "1996-12-31"


def test_query7_since(ctx):
    """Employee who has been a Sr Engineer in d001 since joining the dept."""
    out = run(
        'for $e in doc("employees.xml")/employees/employee'
        ' let $m:= $e/title[.="Sr Engineer" and tend(.)=current-date()]'
        ' let $d:=$e/deptno[.="d001" and tcontains($m, .)]'
        " where not(empty($d)) and not(empty($m))"
        " return <employee>{$e/id, $e/name}</employee>",
        ctx,
    )
    assert len(out) == 1
    employee = out[0]
    assert employee.first("id").text() == "1002"
    assert employee.first("name").text() == "Ann"


def test_query8_period_containment(ctx):
    """Employees with exactly Bob's employment (dept, period) history."""
    out = run(
        'for $e1 in doc("employees.xml")/employees/employee[name = "Bob"]'
        ' for $e2 in doc("employees.xml")/employees/employee[name != "Bob"]'
        " where (every $d1 in $e1/deptno satisfies some $d2 in $e2/deptno satisfies"
        " (string($d1)=string($d2) and tequals($d2,$d1))) and"
        " (every $d2 in $e2/deptno satisfies some $d1 in $e1/deptno satisfies"
        " (string($d2)=string($d1) and tequals($d1,$d2)))"
        " return <employee>{$e2/name}</employee>",
        ctx,
    )
    # Nobody shares Bob's exact dept history in the fixture.
    assert out == []


def test_query8_finds_true_match():
    """QUERY 8 on a document where a genuine match exists."""
    doc = parse_xml(
        """
<employees tstart="1990-01-01" tend="9999-12-31">
  <employee tstart="1995-01-01" tend="1996-12-31">
    <name tstart="1995-01-01" tend="1996-12-31">Bob</name>
    <deptno tstart="1995-01-01" tend="1996-12-31">d9</deptno>
  </employee>
  <employee tstart="1995-01-01" tend="1996-12-31">
    <name tstart="1995-01-01" tend="1996-12-31">Twin</name>
    <deptno tstart="1995-01-01" tend="1996-12-31">d9</deptno>
  </employee>
  <employee tstart="1995-01-01" tend="1995-12-31">
    <name tstart="1995-01-01" tend="1995-12-31">Other</name>
    <deptno tstart="1995-01-01" tend="1995-12-31">d9</deptno>
  </employee>
</employees>
"""
    )
    ctx = make_context({"employees.xml": doc}, TODAY)
    out = run(
        'for $e1 in doc("employees.xml")/employees/employee[name = "Bob"]'
        ' for $e2 in doc("employees.xml")/employees/employee[name != "Bob"]'
        " where (every $d1 in $e1/deptno satisfies some $d2 in $e2/deptno satisfies"
        " (string($d1)=string($d2) and tequals($d2,$d1))) and"
        " (every $d2 in $e2/deptno satisfies some $d1 in $e1/deptno satisfies"
        " (string($d2)=string($d1) and tequals($d1,$d2)))"
        " return <employee>{$e2/name}</employee>",
        ctx,
    )
    assert [e.text() for e in out] == ["Twin"]
