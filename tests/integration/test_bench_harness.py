"""Tests for the benchmark harness itself (small scales)."""

import pytest

from repro.bench import (
    BenchQuery,
    averaged,
    build_setup,
    compare_engines,
    default_queries,
    format_table,
    print_comparison,
    run_archis_cold,
    run_native_cold,
    speedup,
    verify_equivalence,
)


@pytest.fixture(scope="module")
def setup():
    return build_setup(employees=10, years=4)


class TestBuilders:
    def test_build_archis_populates(self, setup):
        assert setup.events_applied > 10
        assert setup.archis.db.table("employee_salary").row_count > 0

    def test_build_native_holds_document(self, setup):
        assert "employees.xml" in setup.native.store.documents()

    def test_native_clock_synced(self, setup):
        assert setup.native.current_date == setup.archis.db.current_date

    def test_compressed_build(self):
        setup = build_setup(employees=10, years=4, compress=True)
        assert setup.archis.archive.compressed_tables


class TestQueries:
    def test_default_queries_keys(self, setup):
        queries = default_queries(setup.generator)
        assert [q.key for q in queries] == ["Q1", "Q2", "Q3", "Q4", "Q5", "Q5e", "Q6"]

    def test_queries_are_parseable(self, setup):
        from repro.xquery import parse_xquery

        for query in default_queries(setup.generator):
            parse_xquery(query.xquery)


class TestMeasurement:
    def test_run_archis_cold(self, setup):
        query = default_queries(setup.generator)[1]
        m = run_archis_cold(setup.archis, query)
        assert m.seconds > 0
        assert m.result_size == 1

    def test_run_native_cold(self, setup):
        query = default_queries(setup.generator)[1]
        m = run_native_cold(setup.native, query)
        assert m.seconds > 0
        assert m.physical_reads > 0  # cold: had to reload the document

    def test_averaged(self, setup):
        query = default_queries(setup.generator)[0]
        m = averaged(lambda: run_archis_cold(setup.archis, query), repeats=2)
        assert m.seconds > 0

    def test_compare_engines_shape(self, setup):
        queries = default_queries(setup.generator)[:2]
        results = compare_engines(setup, queries, repeats=1)
        assert set(results) == {"Q1", "Q2"}
        assert {"archis", "native"} == set(results["Q1"])

    def test_verify_equivalence_passes(self, setup):
        verify_equivalence(setup, default_queries(setup.generator))

    def test_verify_equivalence_catches_divergence(self, setup):
        bogus = BenchQuery("QX", "bogus", "count(doc(\"employees.xml\")/employees/employee)")
        good = BenchQuery(
            "QY", "native-only variant",
            "count(doc(\"employees.xml\")/employees/employee/salary)",
        )
        # sabotage: compare different queries by faking the native engine
        class Lying:
            def xquery(self, q):
                return [42424242]

        import repro.bench.harness as h

        broken = h.BenchSetup(setup.generator, setup.archis, Lying())
        with pytest.raises(AssertionError):
            verify_equivalence(broken, [bogus])


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_speedup(self):
        from repro.bench.harness import Measurement

        fast = Measurement(0.5, 0, 0)
        slow = Measurement(1.0, 0, 0)
        assert speedup(slow, fast) == 2.0

    def test_print_comparison_returns_text(self, setup, capsys):
        queries = default_queries(setup.generator)[:1]
        results = compare_engines(setup, queries, repeats=1)
        text = print_comparison("t", results, {"Q1": "note"})
        assert "Q1" in text
        assert "note" in text
