"""Tests for the command-line interface."""

import pytest

from repro.tools import main


SMALL = ["--employees", "8", "--years", "2"]


def test_generate_to_stdout(capsys):
    assert main(["generate", *SMALL]) == 0
    out = capsys.readouterr().out
    assert out.startswith("<employees")
    assert "tstart=" in out


def test_generate_to_file(tmp_path, capsys):
    target = str(tmp_path / "hdoc.xml")
    assert main(["generate", *SMALL, "-o", target]) == 0
    from repro.xmlkit import parse_xml

    root = parse_xml(open(target).read())
    assert root.name == "employees"


def test_query_translated(capsys):
    assert (
        main(
            [
                "query", *SMALL,
                'count(doc("employees.xml")/employees/employee/salary)',
            ]
        )
        == 0
    )
    out = capsys.readouterr().out.strip()
    assert int(out) > 0


def test_query_elements(capsys):
    assert (
        main(
            [
                "query", *SMALL,
                'for $s in doc("employees.xml")/employees/employee'
                '[id="100001"]/salary return $s',
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "<salary" in out


def test_query_no_fallback_flag():
    with pytest.raises(Exception):
        main(
            [
                "query", *SMALL, "--no-fallback",
                'for $e in doc("employees.xml")//salary return $e',
            ]
        )


def test_sql_command(capsys):
    assert (
        main(
            [
                "sql", *SMALL,
                'for $s in doc("employees.xml")/employees/employee/salary '
                "return $s",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert out.startswith("SELECT")
    assert "employee_salary" in out


def test_stats_command(capsys):
    assert main(["stats", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "segments:" in out
    assert "employee_salary" in out


def test_bench_command(capsys):
    assert main(["bench", *SMALL, "--repeats", "1"]) == 0
    out = capsys.readouterr().out
    assert "Q1" in out and "Q6" in out


def test_umin_zero_disables_segmentation(capsys):
    assert main(["stats", *SMALL, "--umin", "0"]) == 0
    out = capsys.readouterr().out
    assert "segments:         1" in out


def test_compress_flag(capsys):
    assert main(["stats", *SMALL, "--compress"]) == 0


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_check_command(capsys):
    assert main(["check", *SMALL]) == 0
    out = capsys.readouterr().out
    assert "consistent" in out


def test_report_command(tmp_path, capsys):
    target = str(tmp_path / "report.md")
    assert main([
        "report", "--employees", "10", "--years", "3",
        "--repeats", "1", "-o", target,
    ]) == 0
    text = open(target).read()
    assert "# ArchIS reproduction report" in text
    assert "Fig. 8" in text
    assert "translation cost" in text
