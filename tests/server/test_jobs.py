"""The async job service: lifecycle, admission control, isolation.

Covers both layers — :class:`~repro.server.jobs.JobManager` directly
(deterministic cancel/queue-full scenarios via an instrumented
evaluate) and the full wire path through ``job.*`` protocol ops.
"""

import threading
import time

import pytest

from repro.errors import (
    CatalogError,
    JobError,
    JobNotFoundError,
    JobStateError,
    ServerBusyError,
)
from repro.obs import Histogram
from repro.server import Client, Server
from repro.server.jobs import (
    ABORTED,
    COMPLETED,
    ERROR,
    JobManager,
    PENDING,
    RUNNING,
    TERMINAL,
)

from tests.txn.conftest import make_managed

QUERY = "SELECT id, name, salary FROM employee ORDER BY id"
HISTORY_XQUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary return $s'
)


def seed_rows(manager, count=3):
    with manager.begin() as txn:
        for index in range(count):
            txn.sql(
                f"INSERT INTO employee VALUES "
                f"({index + 1}, 'emp{index + 1}', {50000 + index})"
            )


def wait_state(jm, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = jm.get(job_id)
        if job.state in TERMINAL:
            return job
        time.sleep(0.005)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestJobManagerLifecycle:
    @pytest.fixture
    def jm(self):
        archis, manager = make_managed()
        seed_rows(manager)
        jm = JobManager(manager, archis, workers=2)
        try:
            yield jm
        finally:
            jm.close()

    def test_sql_job_completes_with_cached_result(self, jm):
        job = jm.submit("sql", QUERY)
        assert len(job.id) == 12
        final = wait_state(jm, job.id)
        assert final.state == COMPLETED
        payload = jm.result(job.id)
        assert payload["columns"] == ["id", "name", "salary"]
        assert payload["row_count"] == 3
        assert payload["rows"][0] == [1, "emp1", 50000]
        # the result is cached: a second fetch returns the same payload
        assert jm.result(job.id) is payload

    def test_xquery_job_returns_serialized_forest(self, jm):
        job = jm.submit("xquery", HISTORY_XQUERY)
        assert wait_state(jm, job.id).state == COMPLETED
        payload = jm.result(job.id)
        assert payload["row_count"] == 3
        assert all(isinstance(item, str) for item in payload["forest"])
        assert "<salary" in payload["forest"][0]

    def test_non_select_sql_rejected_at_submit(self, jm):
        with pytest.raises(JobError, match="read-only"):
            jm.submit("sql", "INSERT INTO employee VALUES (9, 'x', 1)")

    def test_unknown_kind_rejected(self, jm):
        with pytest.raises(JobError, match="kind"):
            jm.submit("graphql", "{ employees }")

    def test_failed_job_stores_and_reraises_typed_error(self, jm):
        job = jm.submit("sql", "SELECT id FROM no_such_table")
        assert wait_state(jm, job.id).state == ERROR
        with pytest.raises(CatalogError):
            jm.result(job.id)
        status = jm.get(job.id).describe()
        assert status["state"] == ERROR
        assert "no_such_table" in status["message"]

    def test_result_before_completion_is_a_state_error(self, jm):
        release = threading.Event()
        original = jm._evaluate
        jm._evaluate = lambda job: (release.wait(10), original(job))[1]
        try:
            job = jm.submit("sql", QUERY)
            with pytest.raises(JobStateError):
                jm.result(job.id)
        finally:
            release.set()
        wait_state(jm, job.id)

    def test_unknown_id_mentions_the_ttl(self, jm):
        with pytest.raises(JobNotFoundError, match="TTL"):
            jm.get("nope")

    def test_describe_carries_progress_and_rows(self, jm):
        job = jm.submit("sql", QUERY)
        wait_state(jm, job.id)
        status = jm.get(job.id).describe()
        assert status["rows"] == 3
        assert status["progress"]["phase"] == "done"
        assert status["progress"]["elapsed_seconds"] >= 0
        assert status["finished_at"] >= status["started_at"]

    def test_snapshot_pinned_at_run_not_at_fetch(self, jm):
        """A job runs on its own snapshot: rows committed after the job
        finished are invisible to its cached result."""
        job = jm.submit("sql", "SELECT COUNT(*) FROM employee")
        wait_state(jm, job.id)
        with jm.manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (99, 'late', 1)")
        assert jm.result(job.id)["rows"] == [[3]]


class TestCancelAndAdmission:
    @pytest.fixture
    def gated(self):
        """A one-worker manager whose evaluate blocks until released —
        the deterministic way to observe RUNNING/PENDING states."""
        archis, manager = make_managed()
        seed_rows(manager)
        jm = JobManager(manager, archis, workers=1, max_queued=2)
        release = threading.Event()
        original = jm._evaluate
        jm._evaluate = lambda job: (release.wait(15), original(job))[1]
        try:
            yield jm, release
        finally:
            release.set()
            jm.close()

    def test_cancel_pending_job_never_runs(self, gated):
        jm, release = gated
        running = jm.submit("sql", QUERY)
        queued = jm.submit("sql", QUERY)
        assert jm.get(queued.id).state == PENDING
        jm.cancel(queued.id)
        assert jm.get(queued.id).state == ABORTED
        release.set()
        assert wait_state(jm, running.id).state == COMPLETED

    def test_cancel_running_job_discards_its_result(self, gated):
        jm, release = gated
        job = jm.submit("sql", QUERY)
        deadline = time.monotonic() + 5
        while jm.get(job.id).state != RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        jm.cancel(job.id)
        release.set()
        final = wait_state(jm, job.id)
        assert final.state == ABORTED
        assert final.result is None
        with pytest.raises(JobStateError):
            jm.result(job.id)

    def test_queue_full_rejects_with_busy(self, gated):
        jm, release = gated
        jm.submit("sql", QUERY)  # running
        jm.submit("sql", QUERY)  # queued: at max_queued=2
        with pytest.raises(ServerBusyError, match="queue full"):
            jm.submit("sql", QUERY)
        release.set()

    def test_terminal_jobs_free_admission_slots(self, gated):
        jm, release = gated
        first = jm.submit("sql", QUERY)
        second = jm.submit("sql", QUERY)
        release.set()
        wait_state(jm, first.id)
        wait_state(jm, second.id)
        third = jm.submit("sql", QUERY)  # no longer BUSY
        assert wait_state(jm, third.id).state == COMPLETED


class TestResultTtl:
    def test_finished_jobs_evicted_past_the_ttl(self):
        archis, manager = make_managed()
        seed_rows(manager)
        jm = JobManager(manager, archis, workers=1, result_ttl=0.05)
        try:
            job = jm.submit("sql", QUERY)
            wait_state(jm, job.id)
            assert jm.result(job.id)["row_count"] == 3
            time.sleep(0.12)
            with pytest.raises(JobNotFoundError):
                jm.get(job.id)
        finally:
            jm.close()


class TestJobsOverTheWire:
    @pytest.fixture
    def served(self):
        archis, manager = make_managed()
        seed_rows(manager)
        server = Server(manager, archis, workers=4, job_workers=2).start()
        host, port = server.address
        try:
            yield server, host, port
        finally:
            server.stop()

    def test_submit_wait_fetch(self, served):
        _, host, port = served
        with Client(host, port) as client:
            job_id = client.submit(QUERY)
            status = client.job_wait(job_id)
            assert status["state"] == COMPLETED
            result = client.job_result(job_id)
            assert result.columns == ["id", "name", "salary"]
            assert result.row_count == 3
            assert result.stats["job"] == job_id

    def test_job_ids_are_shareable_across_connections(self, served):
        _, host, port = served
        with Client(host, port) as submitter:
            job_id = submitter.submit(QUERY)
        # the submitting connection is gone; any other client may poll
        with Client(host, port) as reader:
            reader.job_wait(job_id)
            result = reader.job_result(job_id)
            assert result.row_count == 3
            listed = {status["job"] for status in reader.job_list()}
            assert job_id in listed

    def test_xquery_job_over_the_wire(self, served):
        _, host, port = served
        with Client(host, port) as client:
            job_id = client.submit(HISTORY_XQUERY, kind="xquery")
            client.job_wait(job_id)
            result = client.job_result(job_id)
            assert result.columns == ["results"]
            assert result.row_count == 3

    def test_binary_encoding_applies_to_job_results(self, served):
        _, host, port = served
        with Client(host, port, encoding="binary") as client:
            job_id = client.submit(QUERY)
            client.job_wait(job_id)
            result = client.job_result(job_id)
            assert result.rows[0] == (1, "emp1", 50000)  # tuples: binary

    def test_write_submission_raises_job_error(self, served):
        _, host, port = served
        with Client(host, port) as client:
            with pytest.raises(JobError, match="read-only"):
                client.submit("DELETE FROM employee")

    def test_server_error_job_reraises_original_class(self, served):
        _, host, port = served
        with Client(host, port) as client:
            job_id = client.submit("SELECT id FROM ghost_table")
            status = client.job_wait(job_id)
            assert status["state"] == ERROR
            with pytest.raises(CatalogError) as excinfo:
                client.job_result(job_id)
            assert excinfo.value.code == "CATALOG"

    def test_long_job_does_not_block_interactive_sessions(self, served):
        """Acceptance criterion: while a slow job occupies the job
        executor, concurrent session requests keep a bounded p99 — the
        job pool is separate from the session worker pool."""
        server, host, port = served
        release = threading.Event()
        jm = server.jobs
        original = jm._evaluate
        jm._evaluate = lambda job: (release.wait(20), original(job))[1]
        latencies = Histogram("bench.jobs.ping.seconds")
        try:
            with Client(host, port) as submitter, Client(host, port) as fast:
                job_ids = [submitter.submit(QUERY) for _ in range(2)]
                for _ in range(60):
                    started = time.perf_counter()
                    fast.execute(QUERY)
                    latencies.observe(time.perf_counter() - started)
                states = {
                    status["state"] for status in submitter.job_list()
                }
                assert states <= {PENDING, RUNNING}  # jobs still held
                release.set()
                for job_id in job_ids:
                    submitter.job_wait(job_id)
        finally:
            release.set()
            jm._evaluate = original
        assert latencies.quantile(0.99) < 0.5, (
            "interactive p99 ballooned while jobs were running: "
            f"{latencies.quantile(0.99) * 1000:.1f}ms"
        )

    def test_cancel_over_the_wire(self, served):
        server, host, port = served
        release = threading.Event()
        jm = server.jobs
        original = jm._evaluate
        jm._evaluate = lambda job: (release.wait(20), original(job))[1]
        try:
            with Client(host, port) as client:
                first = client.submit(QUERY)
                second = client.submit(QUERY)
                status = client.job_cancel(second)
                assert status["state"] in (PENDING, RUNNING, ABORTED)
                release.set()
                assert client.job_wait(second)["state"] == ABORTED
                assert client.job_wait(first)["state"] == COMPLETED
        finally:
            release.set()
            jm._evaluate = original
