"""Wire-protocol versioning and the Client.execute Result facade."""

import pytest

from repro.errors import UnsupportedVersionError
from repro.server import PROTOCOL_VERSION, SUPPORTED_VERSIONS, Client, Server
from repro.server.protocol import check_version

from repro.api import Result
from tests.txn.conftest import make_managed


@pytest.fixture
def served():
    archis, manager = make_managed()
    server = Server(manager, archis, workers=2).start()
    host, port = server.address
    try:
        yield host, port
    finally:
        server.stop()


class TestCheckVersion:
    def test_current_version_is_supported(self):
        assert PROTOCOL_VERSION in SUPPORTED_VERSIONS
        assert check_version({"op": "ping", "v": PROTOCOL_VERSION}) is None

    def test_missing_version_is_legacy_accept(self):
        assert check_version({"op": "ping"}) is None

    def test_mismatch_yields_structured_rejection(self):
        rejection = check_version({"op": "ping", "v": 99})
        assert rejection["ok"] is False
        assert rejection["error"] == "UnsupportedVersionError"
        assert rejection["code"] == "UNSUPPORTED_VERSION"
        assert rejection["offered"] == 99
        assert rejection["supported"] == list(SUPPORTED_VERSIONS)


class TestOverTheWire:
    def test_client_stamps_its_version(self, served):
        host, port = served
        with Client(host, port) as client:
            assert client.ping() is True  # v=1 accepted end to end

    def test_version_99_rejected_with_structured_error(self, served):
        host, port = served
        with Client(host, port) as client:
            # the raw escape hatch lets a test impersonate a newer client
            response = client.request({"op": "ping", "v": 99})
            assert response["ok"] is False
            assert response["code"] == "UNSUPPORTED_VERSION"
            assert response["supported"] == list(SUPPORTED_VERSIONS)
            assert client.ping() is True  # connection survived

    def test_checked_path_raises_typed_error(self, served):
        host, port = served
        with Client(host, port) as client:
            with pytest.raises(UnsupportedVersionError) as excinfo:
                client._checked({"op": "ping", "v": 99})
            assert excinfo.value.code == "UNSUPPORTED_VERSION"
            assert excinfo.value.supported == list(SUPPORTED_VERSIONS)

    def test_legacy_client_without_version_still_served(self, served):
        host, port = served
        with Client(host, port) as client:
            response = client.request({"op": "ping"})
            assert response["ok"] is True


class TestClientExecute:
    def test_select_returns_result_with_columns(self, served):
        host, port = served
        with Client(host, port) as client:
            client.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
            client.snapshot()
            result = client.execute(
                "SELECT id, name, salary FROM employee ORDER BY id"
            )
        assert isinstance(result, Result)
        assert result.columns == ["id", "name", "salary"]
        assert result.rows == [[1, "Bob", 60000]]
        assert result.row_count == 1

    def test_dml_returns_result_with_row_count(self, served):
        host, port = served
        with Client(host, port) as client:
            result = client.execute(
                "INSERT INTO employee VALUES (2, 'Eve', 70000)"
            )
        assert isinstance(result, Result)
        assert result.rows == []
        assert result.row_count == 1
        assert result.columns is None
