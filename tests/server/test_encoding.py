"""The colframe1 binary result codec: round trips, sizes, edge shapes."""

import json
import struct

import pytest

from repro.errors import ProtocolError
from repro.server.encoding import (
    CODEC,
    FLAG_COL_DICT,
    FLAG_ZLIB,
    MAGIC,
    TYPE_DATE,
    decode_result,
    encode_result,
)


def round_trip(rows, columns, **kwargs):
    frame = encode_result(rows, columns, **kwargs)
    names, decoded = decode_result(frame)
    assert names == columns
    return frame, decoded


def as_tuples(rows):
    return [tuple(row) for row in rows]


class TestRoundTrip:
    def test_typed_columns(self):
        rows = [
            (1, "Ann", 60000.5, True),
            (2, "Bob", 70000.0, False),
            (3, "Carl", 0.25, True),
        ]
        _, decoded = round_trip(rows, ["id", "name", "salary", "active"])
        assert decoded == rows

    def test_large_and_negative_ints_widen(self):
        rows = [(-(2**40), 2**40), (0, -1), (2**40, 5)]
        _, decoded = round_trip(rows, ["a", "b"])
        assert decoded == rows

    def test_nulls_round_trip_in_every_column_kind(self):
        rows = [
            (None, None, None, None),
            (7, "x", 1.5, True),
            (None, None, None, None),
        ]
        _, decoded = round_trip(rows, ["i", "s", "f", "b"])
        assert decoded == rows

    def test_all_null_column(self):
        rows = [(None,), (None,)]
        _, decoded = round_trip(rows, ["void"])
        assert decoded == rows

    def test_mixed_kind_column_falls_back_to_json(self):
        # a column mixing strings and ints cannot take a typed block;
        # the per-column JSON fallback still round-trips it exactly
        rows = [(1, "x"), (2, 3), (3, [1, {"k": None}])]
        _, decoded = round_trip(rows, ["id", "anything"])
        assert as_tuples(decoded) == [
            (1, "x"),
            (2, 3),
            (3, [1, {"k": None}]),
        ]

    def test_forced_date_tag_round_trips_day_counts(self):
        rows = [(9131,), (9497,)]
        frame = encode_result(rows, ["tstart"], [TYPE_DATE])
        _, decoded = decode_result(frame)
        assert decoded == rows

    def test_empty_result(self):
        _, decoded = round_trip([], ["id", "name"])
        assert decoded == []

    def test_zero_columns(self):
        frame = encode_result([], [])
        names, decoded = decode_result(frame)
        assert names == []
        assert decoded == []

    def test_non_ascii_strings(self):
        rows = [("héllo",), ("日本語",), ("",)]
        _, decoded = round_trip(rows, ["s"])
        assert decoded == rows


class TestDictionaryEncoding:
    def test_repetitive_column_is_dict_encoded_and_smaller(self):
        statuses = ["active", "retired", "on-leave"]
        rows = [(statuses[i % 3],) for i in range(3000)]
        frame, decoded = round_trip(rows, ["status"])
        assert decoded == rows
        # the dict flag is set on the one column (offset: magic+flags,
        # rows u32 + cols u16, name_len u16 + 6-byte name, type+width)
        col_flags = frame[4 + 6 + 2 + len("status") + 2]
        assert col_flags & FLAG_COL_DICT
        plain = sum(len(s) + 1 for (s,) in rows)  # lower bound, no dict
        assert len(frame) < plain

    def test_high_cardinality_column_stays_plain(self):
        rows = [(f"unique-{i}",) for i in range(50)]
        frame, decoded = round_trip(rows, ["s"])
        assert decoded == rows
        col_flags = frame[4 + 6 + 2 + 1 + 2]
        assert not col_flags & FLAG_COL_DICT


class TestCompression:
    def test_compressed_frame_round_trips_and_shrinks(self):
        rows = [(i, "employee", i * 2) for i in range(5000)]
        columns = ["id", "kind", "v"]
        raw = encode_result(rows, columns)
        packed = encode_result(rows, columns, compress=True)
        assert packed[3] & FLAG_ZLIB
        assert len(packed) < len(raw)
        assert decode_result(packed) == decode_result(raw)

    def test_tiny_frames_skip_compression(self):
        frame = encode_result([(1,)], ["id"], compress=True)
        assert not frame[3] & FLAG_ZLIB


class TestSizeVsJson:
    def test_frame_at_least_2x_smaller_than_json_on_100k_rows(self):
        """Acceptance criterion shape (full run in bench_server_jobs):
        a realistic 100k-row result encodes >= 2x smaller than the JSON
        rows even without zlib."""
        rows = [
            (i, f"emp-{i % 997}", 40000 + (i % 50) * 500, i % 2 == 0)
            for i in range(100_000)
        ]
        columns = ["id", "name", "salary", "active"]
        frame = encode_result(rows, columns)
        json_bytes = len(
            json.dumps([list(r) for r in rows], separators=(",", ":")).encode()
        )
        assert len(frame) * 2 <= json_bytes, (len(frame), json_bytes)
        _, decoded = decode_result(frame)
        assert decoded[:3] == rows[:3] and len(decoded) == len(rows)


class TestMalformedFrames:
    def test_bad_magic_rejected(self):
        with pytest.raises(ProtocolError, match="magic"):
            decode_result(b"XXX\x00" + b"\x00" * 16)

    def test_unknown_type_tag_rejected(self):
        frame = bytearray(encode_result([(1,)], ["id"]))
        # corrupt the type tag byte (after name_len u16 + 2-byte name)
        frame[4 + 6 + 2 + 2] = 99
        with pytest.raises(ProtocolError, match="type tag"):
            decode_result(bytes(frame))

    def test_codec_name_is_stable(self):
        # clients check this before decoding; renaming it is a protocol
        # break, not a refactor
        assert CODEC == "colframe1"
        assert MAGIC == b"CF1"

    def test_oversized_int_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="8-byte"):
            encode_result([(1 << 70,)], ["huge"])
