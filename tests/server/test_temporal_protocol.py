"""Protocol v2: temporal SQL over the wire, with the v1 feature gate.

A v2 client can run FOR SYSTEM_TIME queries — including named parameters
bound to the temporal clause — through ``Client.execute``.  A v1 client
may still run temporal SQL with inline literals, but binding parameters
inside the clause is a v2 feature: the server answers a structured
``TEMPORAL_PARAMS_UNSUPPORTED`` rejection instead of mis-planning.
"""

import pytest

from repro.errors import UnsupportedVersionError
from repro.server import Client, Server
from repro.server.protocol import (
    SUPPORTED_VERSIONS,
    TEMPORAL_PARAMS_VERSION,
    check_temporal_params,
)
from repro.util.timeutil import parse_date

from tests.txn.conftest import make_managed

TEMPORAL_TEXT = (
    "SELECT t.id, t.salary FROM employee_salary t "
    "FOR SYSTEM_TIME AS OF :d ORDER BY t.id"
)


@pytest.fixture
def served():
    archis, manager = make_managed()
    table = archis.db.table("employee")
    table.insert((1, "Bob", 60000))
    table.insert((2, "Eve", 70000))
    archis.db.advance_days(30)
    table.update_where(lambda r: r["id"] == 1, {"salary": 65000})
    archis.apply_pending()
    server = Server(manager, archis, workers=2).start()
    host, port = server.address
    try:
        yield host, port
    finally:
        server.stop()


class TestCheckTemporalParams:
    def test_no_params_never_rejects(self):
        assert check_temporal_params({"op": "sql", "v": 1}, []) is None

    def test_v2_client_accepted(self):
        assert (
            check_temporal_params(
                {"op": "sql", "v": TEMPORAL_PARAMS_VERSION}, ["d"]
            )
            is None
        )

    def test_v1_client_rejected_with_structure(self):
        rejection = check_temporal_params({"op": "sql", "v": 1}, ["d"])
        assert rejection["ok"] is False
        assert rejection["error"] == "UnsupportedVersionError"
        assert rejection["code"] == "TEMPORAL_PARAMS_UNSUPPORTED"
        assert rejection["offered"] == 1
        assert TEMPORAL_PARAMS_VERSION in rejection["supported"]
        assert ":d" in rejection["message"]

    def test_missing_version_counts_as_v1(self):
        assert check_temporal_params({"op": "sql"}, ["d"]) is not None


class TestOverTheWire:
    def test_v2_client_binds_temporal_params(self, served):
        host, port = served
        day = parse_date("1995-01-15")
        with Client(host, port) as client:
            result = client.execute(TEMPORAL_TEXT, params={"d": day})
        assert result.rows == [[1, 60000], [2, 70000]]

    def test_temporal_literals_fine_at_v1(self, served):
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {
                    "op": "sql",
                    "v": 1,
                    "text": (
                        "SELECT t.id, t.salary FROM employee_salary t "
                        "FOR SYSTEM_TIME AS OF DATE '1995-01-15' "
                        "ORDER BY t.id"
                    ),
                }
            )
        assert response["ok"] is True
        assert response["rows"] == [[1, 60000], [2, 70000]]

    def test_v1_temporal_params_get_structured_error(self, served):
        host, port = served
        day = parse_date("1995-01-15")
        with Client(host, port) as client:
            response = client.request(
                {
                    "op": "sql",
                    "v": 1,
                    "text": TEMPORAL_TEXT,
                    "params": {"d": day},
                }
            )
            assert response["ok"] is False
            assert response["code"] == "TEMPORAL_PARAMS_UNSUPPORTED"
            assert response["supported"] == [
                v for v in SUPPORTED_VERSIONS if v >= TEMPORAL_PARAMS_VERSION
            ]
            # the connection survives the rejection
            assert client.ping() is True

    def test_checked_path_raises_typed_error(self, served):
        host, port = served
        with Client(host, port) as client:
            with pytest.raises(UnsupportedVersionError) as excinfo:
                client._checked(
                    {"op": "sql", "v": 1, "text": TEMPORAL_TEXT, "params": {"d": 1}}
                )
            assert excinfo.value.code == "TEMPORAL_PARAMS_UNSUPPORTED"

    def test_params_outside_temporal_clause_fine_at_v1(self, served):
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {
                    "op": "sql",
                    "v": 1,
                    "text": "SELECT e.id FROM employee e WHERE e.id = :k",
                    "params": {"k": 2},
                }
            )
        assert response["ok"] is True
        assert response["rows"] == [[2]]
