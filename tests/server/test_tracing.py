"""End-to-end distributed tracing and live exposition over real sockets.

The acceptance path of observability v2: a query issued through
``server.Client`` produces a server-side root span carrying the client's
trace id, the slow-query log attributes queries to that trace, and the
``metrics``/``health`` ops expose the registry live.
"""

import time

import pytest

from repro.obs import get_registry, get_tracer
from repro.server import Client, Server

from tests.txn.conftest import make_managed

HISTORY_XQUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary return $s'
)


@pytest.fixture
def served():
    archis, manager = make_managed()
    server = Server(manager, archis, workers=4).start()
    host, port = server.address
    try:
        yield archis, manager, server, host, port
    finally:
        server.stop()


@pytest.fixture
def tracing():
    tracer = get_tracer()
    tracer.enable()
    tracer.finished.clear()
    try:
        yield tracer
    finally:
        tracer.disable()
        tracer.finished.clear()


def connect(served, **kwargs):
    _, _, _, host, port = served
    return Client(host, port, **kwargs)


def server_roots(tracer, deadline=5.0):
    """The finished ``server.request`` roots, waiting out the send race.

    The client unblocks as soon as the response bytes arrive; the worker
    thread closes its root span just *after* the send, so the span can
    land in ``tracer.finished`` a beat after the client call returns.
    """
    end = time.monotonic() + deadline
    while True:
        roots = [s for s in tracer.finished if s.name == "server.request"]
        if roots or time.monotonic() >= end:
            return roots
        time.sleep(0.01)


class TestTracePropagation:
    def test_server_root_span_carries_client_trace_id(
        self, served, tracing
    ):
        with connect(served) as client:
            client.execute("INSERT INTO employee VALUES (1, 'ann', 100)")
            result = client.execute("SELECT id FROM employee")
        assert result.stats["trace_id"] == client.trace_id
        roots = server_roots(tracing)
        assert roots, "no server-side root spans recorded"
        assert {s.trace_id for s in roots} == {client.trace_id}
        # the root wraps execution and the response write as children
        child_names = {c.name for root in roots for c in root.children}
        assert {"server.execute", "server.send"} <= child_names

    def test_client_side_span_becomes_remote_parent(self, served, tracing):
        with connect(served) as client:
            with tracing.span("client.batch") as local:
                client.ping()
        roots = server_roots(tracing)
        assert roots
        assert roots[-1].trace_id == local.trace_id
        assert roots[-1].parent_id == local.span_id

    def test_each_connection_gets_its_own_trace(self, served, tracing):
        with connect(served) as a, connect(served) as b:
            assert a.trace_id != b.trace_id

    def test_slow_query_log_records_client_trace_id(self, served):
        archis, _, _, _, _ = served
        archis.slow_query_log.threshold = 0.0  # record everything
        with connect(served) as client:
            client.execute("INSERT INTO employee VALUES (1, 'ann', 100)")
            client.xquery(HISTORY_XQUERY)
        entries = list(archis.slow_query_log)
        assert entries, "slow log recorded nothing at threshold 0"
        assert entries[-1].trace_id == client.trace_id

    def test_trace_flows_with_span_recording_disabled(self, served):
        # context propagation is independent of the enabled flag: the
        # slow log still attributes queries with tracing off
        archis, _, _, _, _ = served
        archis.slow_query_log.threshold = 0.0
        assert not get_tracer().enabled
        with connect(served) as client:
            client.xquery(HISTORY_XQUERY)
        assert list(archis.slow_query_log)[-1].trace_id == client.trace_id


class TestLiveExposition:
    def test_metrics_op_returns_exposition(self, served):
        with connect(served) as client:
            client.execute("INSERT INTO employee VALUES (1, 'ann', 100)")
            text = client.metrics()
        assert "# TYPE repro_server_request_seconds histogram" in text
        assert 'repro_server_request_seconds_bucket{op="sql"' in text
        for name in (
            "repro_server_request_seconds_quantile",
            "repro_txn_commit_seconds_quantile",
            "repro_ingest_freeze_stall_seconds_quantile",
        ):
            assert f'{name}{{quantile="0.99"}}' in text

    def test_health_op_reports_gauges(self, served):
        with connect(served) as client:
            health = client.health()
        assert health["status"] == "ok"
        gauges = health["gauges"]
        assert gauges["server.sessions"] >= 1
        for name in (
            "txn.active",
            "txn.aborts",
            "buffer.occupancy",
            "pager.dirty_pages",
            "wal.size_bytes",
            "updatelog.backlog",
        ):
            assert name in gauges

    def test_stats_metrics_carry_quantiles(self, served):
        archis, _, _, _, _ = served
        with connect(served) as client:
            client.execute("INSERT INTO employee VALUES (1, 'ann', 100)")
        metrics = archis.stats()["metrics"]
        for name in (
            "server.request.seconds",
            "txn.commit.seconds",
            "ingest.freeze_stall.seconds",
        ):
            assert {"p50", "p95", "p99"} <= set(metrics[name]), name
        assert metrics["txn.commit.seconds"]["count"] >= 1

    def test_stats_returns_a_deep_copy(self, served):
        archis, _, _, _, _ = served
        first = archis.stats()
        first["metrics"].clear()
        first["segments"]["count"] = -1
        second = archis.stats()
        assert second["metrics"], "stats() aliased registry internals"
        assert second["segments"]["count"] >= 0

    def test_request_latency_recorded_per_op(self, served):
        registry = get_registry()
        histogram = registry.labeled_histogram(
            "server.request.seconds", label_key="op"
        )
        before = histogram.aggregate.count
        with connect(served) as client:
            client.ping()
            client.execute("SELECT id FROM employee")
        # the worker observes *after* sending the response, so give it a
        # moment to get scheduled past the send
        deadline = time.time() + 2.0
        while (
            histogram.aggregate.count < before + 2
            and time.time() < deadline
        ):
            time.sleep(0.01)
        assert histogram.aggregate.count >= before + 2
        labels = dict(histogram.labels())
        assert "ping" in labels and "sql" in labels
