"""The v1/v2/v3 negotiation matrix against a v3 server.

Protocol v3 is additive: every feature it introduces (async jobs, the
binary result encoding) is gated on the request's declared version, and
requests that do not opt in are answered exactly as a v1/v2 server
would have answered them — same keys, same JSON row shape, no binary
payload ever trailing the response.
"""

import json

import pytest

from repro.errors import ProtocolError, UnsupportedVersionError
from repro.server import Client, Server
from repro.server.protocol import (
    BINARY_ENCODING_VERSION,
    JOBS_VERSION,
    PROTOCOL_VERSION,
    SUPPORTED_VERSIONS,
    check_encoding,
    check_jobs,
)

from tests.txn.conftest import make_managed

QUERY = "SELECT id, name, salary FROM employee ORDER BY id"


@pytest.fixture
def served():
    archis, manager = make_managed()
    with manager.begin() as txn:
        txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        txn.sql("INSERT INTO employee VALUES (2, 'Eve', 70000)")
    server = Server(manager, archis, workers=2, job_workers=1).start()
    host, port = server.address
    try:
        yield host, port
    finally:
        server.stop()


class TestVersionConstants:
    def test_v3_is_current_and_all_versions_supported(self):
        assert PROTOCOL_VERSION == 3
        assert SUPPORTED_VERSIONS == (1, 2, 3)
        assert JOBS_VERSION == 3
        assert BINARY_ENCODING_VERSION == 3


class TestFeatureGates:
    def test_jobs_gate_accepts_v3_rejects_older(self):
        assert check_jobs({"op": "job.submit", "v": 3}) is None
        for version in (1, 2, None):
            request = {"op": "job.submit"}
            if version is not None:
                request["v"] = version
            rejection = check_jobs(request)
            assert rejection["ok"] is False
            assert rejection["code"] == "JOBS_UNSUPPORTED"
            assert rejection["supported"] == [3]

    def test_encoding_gate_accepts_json_everywhere(self):
        for version in (1, 2, 3):
            assert check_encoding({"op": "sql", "v": version}) is None
            assert (
                check_encoding({"op": "sql", "v": version, "enc": "json"})
                is None
            )

    def test_binary_encoding_needs_v3(self):
        assert check_encoding({"op": "sql", "v": 3, "enc": "binary"}) is None
        rejection = check_encoding({"op": "sql", "v": 2, "enc": "binary"})
        assert rejection["code"] == "BINARY_ENCODING_UNSUPPORTED"
        assert rejection["offered"] == 2

    def test_unknown_encoding_is_a_protocol_error(self):
        rejection = check_encoding({"op": "sql", "v": 3, "enc": "msgpack"})
        assert rejection["ok"] is False
        assert rejection["code"] == "PROTOCOL"


class TestMatrixOverTheWire:
    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_every_version_runs_plain_sql(self, served, version):
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {"op": "sql", "v": version, "text": QUERY}
            )
        assert response["ok"] is True
        assert response["rows"] == [[1, "Bob", 60000], [2, "Eve", 70000]]

    @pytest.mark.parametrize("version", [1, 2])
    def test_legacy_responses_carry_json_rows_only(self, served, version):
        """No binary negotiation: the response must be pure JSON with
        rows inline — the exact shape a v1/v2 server shipped."""
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {"op": "sql", "v": version, "text": QUERY}
            )
        assert "binary" not in response
        assert response["rows"] == [[1, "Bob", 60000], [2, "Eve", 70000]]
        # byte-stable under JSON round-trip: only JSON scalars inside
        assert json.loads(json.dumps(response)) == response

    @pytest.mark.parametrize("version", [1, 2])
    def test_binary_request_from_old_version_rejected(self, served, version):
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {"op": "sql", "v": version, "text": QUERY, "enc": "binary"}
            )
            assert response["ok"] is False
            assert response["code"] == "BINARY_ENCODING_UNSUPPORTED"
            assert response["supported"] == [BINARY_ENCODING_VERSION]
            assert client.ping() is True  # connection survived

    def test_binary_rows_only_after_negotiation(self, served):
        host, port = served
        with Client(host, port, encoding="binary") as client:
            result = client.execute(QUERY)
            assert result.rows == [(1, "Bob", 60000), (2, "Eve", 70000)]
        # same server, json client: lists, not tuples
        with Client(host, port) as client:
            result = client.execute(QUERY)
            assert result.rows == [[1, "Bob", 60000], [2, "Eve", 70000]]

    def test_v3_without_enc_still_gets_json(self, served):
        host, port = served
        with Client(host, port) as client:
            response = client.request({"op": "sql", "v": 3, "text": QUERY})
        assert "binary" not in response
        assert isinstance(response["rows"][0], list)

    @pytest.mark.parametrize("version", [1, 2])
    def test_job_ops_gated_behind_v3(self, served, version):
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {"op": "job.submit", "v": version, "kind": "sql",
                 "text": QUERY}
            )
            assert response["ok"] is False
            assert response["code"] == "JOBS_UNSUPPORTED"
            assert client.ping() is True

    def test_job_ops_allowed_at_v3(self, served):
        host, port = served
        with Client(host, port) as client:
            job_id = client.submit(QUERY)
            assert client.job_wait(job_id)["state"] == "COMPLETED"

    def test_unknown_encoding_over_the_wire(self, served):
        host, port = served
        with Client(host, port) as client:
            response = client.request(
                {"op": "sql", "v": 3, "text": QUERY, "enc": "msgpack"}
            )
            assert response["ok"] is False
            assert response["code"] == "PROTOCOL"

    def test_future_version_still_rejected(self, served):
        host, port = served
        with Client(host, port) as client:
            with pytest.raises(UnsupportedVersionError) as excinfo:
                client._checked({"op": "ping", "v": 99})
            assert excinfo.value.supported == [1, 2, 3]

    def test_client_constructor_rejects_unknown_encoding(self):
        with pytest.raises(ProtocolError, match="encoding"):
            Client("localhost", 1, encoding="msgpack")
