"""End-to-end server tests over real sockets.

Each test starts a :class:`~repro.server.Server` on an ephemeral port
and talks to it with :class:`~repro.server.Client` — the same path an
external process would use via ``python -m repro.tools serve``.
"""

import threading
import time

import pytest

from repro.errors import CatalogError, ProtocolError, ServerBusyError
from repro.server import Client, Server

from tests.txn.conftest import make_managed

QUERY = "SELECT id, name, salary FROM employee ORDER BY id"
HISTORY_XQUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary return $s'
)


def thread_names():
    return {t.name for t in threading.enumerate()}


@pytest.fixture
def served():
    archis, manager = make_managed()
    server = Server(manager, archis, workers=4).start()
    host, port = server.address
    try:
        yield archis, manager, server, host, port
    finally:
        server.stop()


def connect(served, **kwargs):
    _, _, _, host, port = served
    return Client(host, port, **kwargs)


class TestProtocolBasics:
    def test_ping(self, served):
        with connect(served) as client:
            assert client.ping() is True

    def test_unknown_op_is_an_error_not_a_disconnect(self, served):
        with connect(served) as client:
            response = client.request({"op": "explode"})
            assert response["ok"] is False
            assert response["error"] == "ProtocolError"
            assert client.ping() is True  # connection survived

    def test_stats_exposes_txn_and_wal_counters(self, served):
        with connect(served) as client:
            stats = client.stats()
        assert "txn" in stats
        assert "wal_fsyncs" in stats["durability"]


class TestSqlOverTheWire:
    def test_autocommit_write_then_snapshot_read(self, served):
        with connect(served) as client:
            result = client.sql(
                "INSERT INTO employee VALUES (1, 'Bob', 60000)"
            )
            assert result["rowcount"] == 1
            client.snapshot()  # re-pin past the auto-committed write
            result = client.sql(QUERY)
            assert result["columns"] == ["id", "name", "salary"]
            assert result["rows"] == [[1, "Bob", 60000]]

    def test_autocommit_read_your_writes(self, served):
        """Without an explicit snapshot pin, a session's reads follow
        its own commits — INSERT then SELECT on one connection sees the
        new row, for autocommit and for explicit transactions alike."""
        with connect(served) as client:
            client.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
            assert client.sql(QUERY)["rows"] == [[1, "Bob", 60000]]
            client.begin()
            client.sql("UPDATE employee SET salary = 70000 WHERE id = 1")
            client.commit()
            assert client.sql(QUERY)["rows"] == [[1, "Bob", 70000]]

    def test_transaction_lifecycle(self, served):
        with connect(served) as writer, connect(served) as reader:
            writer.begin()
            writer.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
            # another session's snapshot cannot see the open transaction
            reader.snapshot()
            assert reader.sql(QUERY)["rows"] == []
            writer.commit()
            reader.snapshot()
            assert reader.sql(QUERY)["rows"] == [[1, "Bob", 60000]]

    def test_abort_discards_writes(self, served):
        with connect(served) as client:
            client.begin()
            client.sql("INSERT INTO employee VALUES (9, 'Ghost', 1)")
            client.abort()
            client.snapshot()
            assert client.sql(QUERY)["rows"] == []

    def test_pinned_snapshot_ignores_later_commits(self, served):
        with connect(served) as client:
            client.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
            pinned = client.snapshot()
            client.sql("UPDATE employee SET salary = 70000 WHERE id = 1")
            # still pinned before the update
            assert client.sql(QUERY)["rows"] == [[1, "Bob", 60000]]
            assert client.snapshot() > pinned
            assert client.sql(QUERY)["rows"] == [[1, "Bob", 70000]]

    def test_sql_error_does_not_kill_the_session(self, served):
        with connect(served) as client:
            # the structured {code, message} response rebuilds the
            # engine's own exception type client-side
            with pytest.raises(CatalogError) as excinfo:
                client.sql("SELECT nope FROM missing")
            assert excinfo.value.remote_error
            assert excinfo.value.code == "CATALOG"
            assert client.ping() is True

    def test_xquery_runs_on_the_session_snapshot(self, served):
        with connect(served) as client:
            client.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
            client.snapshot()
            client.sql("UPDATE employee SET salary = 70000 WHERE id = 1")
            # snapshot predates the update: one salary version visible
            assert len(client.xquery(HISTORY_XQUERY)) == 1
            client.snapshot()
            assert len(client.xquery(HISTORY_XQUERY)) == 2


class TestConcurrencyAndLifecycle:
    def test_concurrent_clients(self, served):
        _, manager, _, host, port = served
        failures = []

        def hammer(key):
            try:
                with Client(host, port) as client:
                    client.sql(
                        f"INSERT INTO employee VALUES ({key}, 'w{key}', 0)"
                    )
                    for step in range(3):
                        client.begin()
                        client.sql(
                            f"UPDATE employee SET salary = {step} "
                            f"WHERE id = {key}"
                        )
                        client.commit()
                    # the stable snapshot day stays below any still
                    # active transaction, so our own last commit may
                    # only become visible once other writers finish
                    deadline = time.monotonic() + 30.0
                    while time.monotonic() < deadline:
                        client.snapshot()
                        rows = client.sql(QUERY)["rows"]
                        if [key, f"w{key}", 2] in rows:
                            break
                        time.sleep(0.02)
                    assert [key, f"w{key}", 2] in rows
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures, failures
        assert manager.stats()["active"] == 0

    def test_disconnect_aborts_open_transaction(self, served):
        _, manager, _, _, _ = served
        client = connect(served)
        client.begin()
        client.sql("INSERT INTO employee VALUES (5, 'Gone', 1)")
        client.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if manager.stats()["active"] == 0:
                break
            time.sleep(0.02)
        assert manager.stats()["active"] == 0
        assert manager.locks.stats() == {"held": 0, "waiting": 0}
        with connect(served) as probe:
            probe.snapshot()
            assert probe.sql(QUERY)["rows"] == []

    def test_admission_control_rejects_overflow(self):
        """workers=1 + queue_size=1: with one connection parked on the
        worker and one queued, further connects get BUSY."""
        archis, manager = make_managed()
        server = Server(manager, archis, workers=1, queue_size=1).start()
        host, port = server.address
        try:
            parked = Client(host, port)
            assert parked.ping()  # occupies the only worker
            queued = Client(host, port)
            time.sleep(0.3)  # let the acceptor queue it
            rejected = Client(host, port)
            with pytest.raises((ServerBusyError, ProtocolError)):
                rejected.ping()
            parked.close()
            queued.close()
            rejected.close()
        finally:
            server.stop()

    def test_stop_leaks_no_threads(self):
        archis, manager = make_managed()
        before = thread_names()
        server = Server(manager, archis, workers=3).start()
        host, port = server.address
        client = Client(host, port)
        assert client.ping()
        server.stop()
        client.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = {
                n for n in thread_names() - before if n.startswith("repro-")
            }
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked, leaked
        # stopped server can be restarted
        server.start()
        host, port = server.address
        with Client(host, port) as again:
            assert again.ping()
        server.stop()
