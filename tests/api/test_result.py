"""The Result facade: explicit surface; the legacy list shim is gone."""

import pytest

from repro import Result
from repro.sql.result import ResultSet


class TestExplicitSurface:
    def test_rows_columns_and_counts(self):
        result = Result([(1, "a"), (2, "b")], ["id", "name"])
        assert result.rows == [(1, "a"), (2, "b")]
        assert result.columns == ["id", "name"]
        assert result.row_count == 2
        assert result.rowcount == 2  # DB-API-flavoured alias
        assert result.first() == (1, "a")

    def test_dml_shape_carries_explicit_row_count(self):
        result = Result([], None, row_count=7)
        assert result.rows == []
        assert result.row_count == 7
        assert result.first() is None

    def test_stats_defaults_to_mutable_empty_dict(self):
        result = Result([])
        assert result.stats == {}
        result.stats["seconds"] = 0.5
        assert Result([]).stats == {}  # not shared

    def test_repr_mentions_shape(self):
        text = repr(Result([(1,)], ["id"]))
        assert "1" in text

    def test_results_with_same_rows_compare_equal(self):
        assert Result([(1,)]) == Result([(1,)])
        assert Result([(1,)]) != Result([(2,)])

    def test_result_is_hashable(self):
        assert len({Result([]), Result([])}) == 2


class TestLegacyShimIsGone:
    """Result stopped impersonating a list: sequence protocol removed."""

    def test_result_is_not_iterable(self):
        with pytest.raises(TypeError):
            list(Result([(1,), (2,)]))

    def test_no_len_getitem_contains(self):
        result = Result([(1,), (2,), (3,)])
        with pytest.raises(TypeError):
            len(result)
        with pytest.raises(TypeError):
            result[0]
        with pytest.raises(TypeError):
            (2,) in result

    def test_equality_against_bare_list_is_false(self):
        assert Result([(1,)]) != [(1,)]
        assert not Result([(1,)]) == [(1,)]


class TestResultSetKeepsSequenceBehaviour:
    """ResultSet's sequence behaviour is documented API and stays."""

    def test_sequence_protocol(self):
        rs = ResultSet(["id"], [(1,), (2,)])
        assert list(rs) == [(1,), (2,)]
        assert len(rs) == 2
        assert rs[0] == (1,)
        assert (1,) in rs

    def test_resultset_is_a_result(self):
        rs = ResultSet(["id"], [(1,)])
        assert isinstance(rs, Result)
        assert rs.rows == [(1,)]
        assert rs.columns == ["id"]
        assert rs.row_count == 1
