"""The Result facade: explicit surface, legacy list shims, warnings."""

import warnings

import pytest

import repro.api
from repro import Result
from repro.sql.result import ResultSet


@pytest.fixture(autouse=True)
def reset_warned():
    """Each test observes the once-per-process warning fresh."""
    saved = set(repro.api._WARNED)
    repro.api._WARNED.clear()
    yield
    repro.api._WARNED.clear()
    repro.api._WARNED.update(saved)


class TestExplicitSurface:
    def test_rows_columns_and_counts(self):
        result = Result([(1, "a"), (2, "b")], ["id", "name"])
        assert result.rows == [(1, "a"), (2, "b")]
        assert result.columns == ["id", "name"]
        assert result.row_count == 2
        assert result.rowcount == 2  # DB-API-flavoured alias
        assert result.first() == (1, "a")

    def test_dml_shape_carries_explicit_row_count(self):
        result = Result([], None, row_count=7)
        assert result.rows == []
        assert result.row_count == 7
        assert result.first() is None

    def test_stats_defaults_to_mutable_empty_dict(self):
        result = Result([])
        assert result.stats == {}
        result.stats["seconds"] = 0.5
        assert Result([]).stats == {}  # not shared

    def test_repr_mentions_shape(self):
        text = repr(Result([(1,)], ["id"]))
        assert "1" in text

    def test_results_with_same_rows_compare_equal_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert Result([(1,)]) == Result([(1,)])
            assert Result([(1,)]) != Result([(2,)])

    def test_result_is_hashable(self):
        assert len({Result([]), Result([])}) == 2


class TestLegacyListShims:
    def test_iteration_works_but_warns_once(self):
        result = Result([(1,), (2,)])
        with pytest.warns(DeprecationWarning, match="Result.rows"):
            assert list(result) == [(1,), (2,)]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(result) == [(1,), (2,)]  # second use: silent

    def test_len_getitem_contains(self):
        result = Result([(1,), (2,), (3,)])
        with pytest.warns(DeprecationWarning):
            assert len(result) == 3
        with pytest.warns(DeprecationWarning):
            assert result[0] == (1,)
        with pytest.warns(DeprecationWarning):
            assert (2,) in result

    def test_equality_against_bare_list_warns(self):
        result = Result([(1,)])
        with pytest.warns(DeprecationWarning):
            assert result == [(1,)]

    def test_each_operation_warns_independently(self):
        result = Result([(1,)])
        with pytest.warns(DeprecationWarning):
            list(result)  # warns for iteration (list() also probes len())
        with pytest.warns(DeprecationWarning):
            result[0]  # indexing still gets its own first warning


class TestResultSetStaysSilent:
    """ResultSet's sequence behaviour is documented API — no warnings."""

    def test_sequence_protocol_is_silent(self):
        rs = ResultSet(["id"], [(1,), (2,)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert list(rs) == [(1,), (2,)]
            assert len(rs) == 2
            assert rs[0] == (1,)
            assert (1,) in rs

    def test_resultset_is_a_result(self):
        rs = ResultSet(["id"], [(1,)])
        assert isinstance(rs, Result)
        assert rs.rows == [(1,)]
        assert rs.columns == ["id"]
        assert rs.row_count == 1
