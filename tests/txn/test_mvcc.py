"""MVCC snapshot semantics: isolation, abort/undo, replay equivalence.

The acceptance stress lives here too: snapshot reads taken while
concurrent writers commit must be byte-identical to a single-threaded
replay of the committed transactions up to the snapshot day.
"""

import sys
import threading

import pytest

from repro.errors import TxnError
from repro.txn import DAY_GAP

from tests.txn.conftest import make_managed

QUERY = "SELECT id, name, salary FROM employee ORDER BY id"
HISTORY_XQUERY = (
    'for $s in doc("employees.xml")/employees/employee/salary return $s'
)


class TestSnapshotIsolation:
    def test_snapshot_sees_only_committed_state(self, managed):
        archis, manager = managed
        with manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        snap = manager.snapshot()
        assert snap.sql(QUERY).rows == [(1, "Bob", 60000)]

    def test_uncommitted_update_invisible(self, managed):
        archis, manager = managed
        with manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        writer = manager.begin()
        writer.sql("UPDATE employee SET salary = 70000 WHERE id = 1")
        # mid-flight: a fresh snapshot must not see the in-place update
        assert manager.snapshot().sql(QUERY).rows == [(1, "Bob", 60000)]
        writer.commit()
        assert manager.snapshot().sql(QUERY).rows == [(1, "Bob", 70000)]

    def test_old_snapshot_stays_pinned_after_commit(self, managed):
        archis, manager = managed
        with manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        old = manager.snapshot()
        with manager.begin() as txn:
            txn.sql("UPDATE employee SET salary = 70000 WHERE id = 1")
        with manager.begin() as txn:
            txn.sql("DELETE FROM employee WHERE id = 1")
        assert old.sql(QUERY).rows == [(1, "Bob", 60000)]
        assert manager.snapshot().sql(QUERY).rows == []

    def test_snapshot_rejects_writes(self, managed):
        _, manager = managed
        with pytest.raises(TxnError):
            manager.snapshot().sql("INSERT INTO employee VALUES (9, 'x', 1)")

    def test_snapshot_days_are_gapped(self, managed):
        _, manager = managed
        first = manager.begin()
        second = manager.begin()
        assert second.day - first.day == DAY_GAP
        # the stable day sits strictly below every active commit day
        assert manager.snapshot().day < first.day
        first.abort()
        second.abort()

    def test_snapshot_pins_history_queries(self, managed):
        archis, manager = managed
        with manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        snap = manager.snapshot()
        with manager.begin() as txn:
            txn.sql("UPDATE employee SET salary = 70000 WHERE id = 1")
        # the pinned xquery sees one salary version, the fresh one two
        old = snap.run(archis.xquery, HISTORY_XQUERY).rows
        new = manager.snapshot().run(archis.xquery, HISTORY_XQUERY).rows
        assert len(old) == 1
        assert len(new) == 2


class TestAbortUndo:
    def test_abort_restores_current_and_history(self, managed):
        archis, manager = managed
        with manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        before_current = manager.snapshot().sql(QUERY).rows
        before_history = [
            str(e)
            for e in manager.snapshot().run(archis.xquery, HISTORY_XQUERY).rows
        ]
        txn = manager.begin()
        txn.sql("UPDATE employee SET salary = 99999 WHERE id = 1")
        txn.sql("INSERT INTO employee VALUES (2, 'Eve', 50000)")
        txn.sql("DELETE FROM employee WHERE id = 1")
        txn.abort()
        assert manager.snapshot().sql(QUERY).rows == before_current
        after_history = [
            str(e)
            for e in manager.snapshot().run(archis.xquery, HISTORY_XQUERY).rows
        ]
        assert after_history == before_history
        # direct read of the live table agrees (no transaction active)
        assert archis.db.sql(QUERY).rows == before_current

    def test_context_manager_aborts_on_exception(self, managed):
        archis, manager = managed
        with pytest.raises(RuntimeError):
            with manager.begin() as txn:
                txn.sql("INSERT INTO employee VALUES (5, 'Ghost', 1)")
                raise RuntimeError("boom")
        assert manager.snapshot().sql(QUERY).rows == []
        assert manager.stats()["active"] == 0

    def test_completed_transaction_rejects_statements(self, managed):
        _, manager = managed
        txn = manager.begin()
        txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        txn.commit()
        with pytest.raises(TxnError):
            txn.sql("INSERT INTO employee VALUES (2, 'Eve', 1)")
        with pytest.raises(TxnError):
            txn.commit()


class TestApplyCommittedOrdering:
    def test_active_days_read_under_history_write_lock(self):
        """Regression: the uncommitted-day set must be snapshotted
        *inside* the history write lock.  Read before it, a transaction
        that begins and runs tracked DML in the gap is missing from the
        stale set, so its uncommitted entries get applied to the shared
        H-tables — and survive its abort, because discard_pending then
        finds nothing left to discard."""
        archis, manager = make_managed(profile="atlas")
        orig = manager.active_days
        observed = []

        def spy():
            if sys._getframe(1).f_code.co_name == "apply_committed":
                observed.append(manager.history._writer_active)
            return orig()

        manager.active_days = spy
        with manager.begin() as txn:
            txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")
        assert observed, "apply_committed never read the active-day set"
        assert all(observed)


class TestCommitFailurePoisoning:
    def test_failed_commit_after_archival_poisons_manager(self):
        """Once a committing transaction's update-log entries are
        drained into the H-tables, a failure in the durability tail
        leaves in-process state abort() cannot repair — the manager
        must refuse new work rather than serve divergent data."""
        archis, manager = make_managed(profile="atlas")
        txn = manager.begin()
        txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")

        def boom():
            raise OSError("disk full")

        manager.db.pager.commit = boom
        with pytest.raises(OSError):
            txn.commit()
        del manager.db.pager.commit
        with pytest.raises(TxnError, match="reopen"):
            manager.begin()
        with pytest.raises(TxnError, match="reopen"):
            manager.snapshot()
        with pytest.raises(TxnError, match="reopen"):
            txn.sql("INSERT INTO employee VALUES (2, 'Eve', 1)")
        # teardown stays possible: sessions abort on disconnect
        txn.abort()

    def test_failed_commit_under_trigger_tracking_can_abort(self):
        """db2-profile archival is undo-tracked, so a failed commit is
        still recoverable in process: abort restores both the base
        table and the H-tables, and the manager keeps serving."""
        archis, manager = make_managed(profile="db2")
        txn = manager.begin()
        txn.sql("INSERT INTO employee VALUES (1, 'Bob', 60000)")

        def boom():
            raise OSError("disk full")

        manager.db.pager.commit = boom
        with pytest.raises(OSError):
            txn.commit()
        del manager.db.pager.commit
        txn.abort()
        assert manager.snapshot().sql(QUERY).rows == []
        assert (
            manager.snapshot().run(archis.xquery, HISTORY_XQUERY).rows == []
        )


class TestReplayEquivalence:
    """Acceptance criterion: 8 snapshot readers + 4 writers; every
    snapshot read is byte-identical to a single-threaded replay of the
    committed transactions at that timestamp."""

    WRITERS = 4
    READERS = 8
    TXNS_PER_WRITER = 6

    @pytest.mark.parametrize("profile", ["atlas", "db2"])
    def test_concurrent_snapshots_match_replay(self, profile):
        archis, manager = make_managed(profile=profile)
        committed = []  # (day, writer, step) appended after commit
        committed_lock = threading.Lock()
        observations = []  # (day, repr(rows)) per snapshot read
        observations_lock = threading.Lock()
        stop = threading.Event()
        failures = []

        # each writer owns one key, pre-inserted and committed
        for writer_id in range(self.WRITERS):
            with manager.begin() as txn:
                txn.sql(
                    f"INSERT INTO employee VALUES "
                    f"({writer_id}, 'w{writer_id}', 0)"
                )
                day, step = txn.day, -1
            with committed_lock:
                committed.append((day, writer_id, step))

        def writer(writer_id):
            try:
                for step in range(self.TXNS_PER_WRITER):
                    txn = manager.begin()
                    txn.sql(
                        f"UPDATE employee SET salary = "
                        f"{writer_id * 1000 + step} WHERE id = {writer_id}"
                    )
                    txn.commit()
                    with committed_lock:
                        committed.append((txn.day, writer_id, step))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    snap = manager.snapshot()
                    rows = snap.sql(QUERY).rows
                    with observations_lock:
                        observations.append((snap.day, repr(rows)))
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        writers = [
            threading.Thread(target=writer, args=(i,))
            for i in range(self.WRITERS)
        ]
        readers = [
            threading.Thread(target=reader) for _ in range(self.READERS)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(timeout=60.0)
        stop.set()
        for thread in readers:
            thread.join(timeout=60.0)
        assert not failures, failures
        assert len(committed) == self.WRITERS * (self.TXNS_PER_WRITER + 1)
        assert observations, "readers never observed a snapshot"

        # single-threaded replay: state at day T = all commits with
        # day <= T applied in day order (commit days are unique)
        def replay(day):
            state = {}
            for commit_day, writer_id, step in sorted(committed):
                if commit_day > day:
                    break
                if step == -1:
                    state[writer_id] = (writer_id, f"w{writer_id}", 0)
                else:
                    state[writer_id] = (
                        writer_id,
                        f"w{writer_id}",
                        writer_id * 1000 + step,
                    )
            return repr([state[k] for k in sorted(state)])

        mismatches = [
            (day, seen, replay(day))
            for day, seen in observations
            if seen != replay(day)
        ]
        assert not mismatches, mismatches[:3]
        assert manager.stats()["active"] == 0
        assert manager.locks.stats() == {"held": 0, "waiting": 0}
