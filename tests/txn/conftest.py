"""Shared fixtures: a tracked employee relation under a TxnManager."""

import pytest

from repro.archis import ArchIS, ArchISConfig
from repro.rdb import ColumnType, Database
from repro.txn import TxnManager


def make_managed(profile="atlas", **kwargs):
    db = Database()
    db.set_date("1995-01-01")
    db.create_table(
        "employee",
        [
            ("id", ColumnType.INT),
            ("name", ColumnType.VARCHAR),
            ("salary", ColumnType.INT),
        ],
        primary_key=("id",),
    )
    archis = ArchIS(db, config=ArchISConfig(profile=profile))
    archis.track_table("employee", document_name="employees.xml")
    manager = TxnManager(db, archis, **kwargs)
    return archis, manager


@pytest.fixture(params=["atlas", "db2"])
def managed(request):
    return make_managed(profile=request.param)
