"""Group commit: concurrent COMMIT frames share WAL fsyncs, durably.

The linger is adaptive (see :mod:`repro.storage.wal`): a leader only
sleeps ``group_window`` before its fsync while the EWMA contention
score says concurrent committers are actually arriving, so a solo
client never pays the window and a contended burst still batches.
"""

import threading

from repro.obs import get_registry
from repro.rdb import ColumnType, Database
from repro.txn import TxnManager

TABLES = 8
TXNS_PER_TABLE = 4


def adaptive_counters():
    registry = get_registry()
    return (
        registry.counter("wal.group_commit.adaptive_waits").value,
        registry.counter("wal.group_commit.fast_syncs").value,
    )


def run_commits(path, group_commit, group_window=0.0):
    """N threads, each committing transactions on its own table (so
    their lock sets are disjoint and commits can overlap).  Returns
    (fsyncs, batched, commits) deltas for the run."""
    registry = get_registry()
    db = Database(path, group_commit=group_commit, group_window=group_window)
    for index in range(TABLES):
        db.create_table(
            f"t{index}",
            [("id", ColumnType.INT), ("v", ColumnType.INT)],
            primary_key=("id",),
        )
    db.save()
    manager = TxnManager(db)
    fsyncs0 = registry.counter("wal.fsyncs").value
    batched0 = registry.counter("wal.group_commit.batched").value
    commits0 = registry.counter("wal.commits").value

    def worker(table_index):
        for step in range(TXNS_PER_TABLE):
            with manager.begin() as txn:
                txn.sql(
                    f"INSERT INTO t{table_index} VALUES ({step}, {step * 10})"
                )

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(TABLES)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    total = sum(
        db.sql(f"SELECT COUNT(*) FROM t{i}").scalar() for i in range(TABLES)
    )
    assert total == TABLES * TXNS_PER_TABLE
    db.close()
    return (
        registry.counter("wal.fsyncs").value - fsyncs0,
        registry.counter("wal.group_commit.batched").value - batched0,
        registry.counter("wal.commits").value - commits0,
    )


class TestGroupCommit:
    def test_group_commit_batches_fsyncs(self, tmp_path):
        """Acceptance criterion: wal.fsyncs under group commit is
        measurably lower than the commit count."""
        path = str(tmp_path / "grouped.db")
        fsyncs, batched, commits = run_commits(
            path, group_commit=True, group_window=0.005
        )
        assert commits == TABLES * TXNS_PER_TABLE
        assert batched > 0, "no commit ever shared a leader's fsync"
        assert fsyncs < commits, (fsyncs, commits)
        # every batched commit is an fsync saved
        assert fsyncs + batched >= commits

    def test_without_group_commit_every_commit_fsyncs(self, tmp_path):
        path = str(tmp_path / "plain.db")
        fsyncs, batched, commits = run_commits(path, group_commit=False)
        assert batched == 0
        assert fsyncs >= commits

    def test_grouped_commits_are_durable_on_reopen(self, tmp_path):
        path = str(tmp_path / "durable.db")
        run_commits(path, group_commit=True, group_window=0.005)
        # no checkpoint ran: reopening replays the WAL
        db = Database.open(path)
        for index in range(TABLES):
            rows = db.sql(f"SELECT id, v FROM t{index} ORDER BY id").rows
            assert rows == [(s, s * 10) for s in range(TXNS_PER_TABLE)]
        db.close()


class TestAdaptiveLinger:
    def test_solo_client_never_pays_the_window(self, tmp_path):
        """A serial committer has zero contention: every leader takes
        the fast path and fsyncs immediately, window or not."""
        path = str(tmp_path / "solo.db")
        db = Database(path, group_commit=True, group_window=0.005)
        db.create_table(
            "t",
            [("id", ColumnType.INT), ("v", ColumnType.INT)],
            primary_key=("id",),
        )
        db.save()
        manager = TxnManager(db)
        waits0, fast0 = adaptive_counters()
        for step in range(10):
            with manager.begin() as txn:
                txn.sql(f"INSERT INTO t VALUES ({step}, {step})")
        waits, fast = adaptive_counters()
        db.close()
        assert waits - waits0 == 0, "a solo client lingered"
        assert fast - fast0 >= 10

    def test_contended_commits_linger_and_batch(self, tmp_path):
        """Concurrent committers push the EWMA over the threshold, so
        at least one leader lingers — and batching still happens."""
        path = str(tmp_path / "contended.db")
        waits0, _ = adaptive_counters()
        fsyncs, batched, commits = run_commits(
            path, group_commit=True, group_window=0.002
        )
        waits, _ = adaptive_counters()
        assert waits - waits0 > 0, "no leader ever lingered under load"
        assert batched > 0
        assert fsyncs < commits

    def test_contention_decays_back_to_fast_path(self, tmp_path):
        """After a contended burst, a serial tail decays the EWMA below
        the threshold: later solo commits on the *same* WAL stop
        lingering (the score is in-memory state, not persisted)."""
        path = str(tmp_path / "decay.db")
        db = Database(path, group_commit=True, group_window=0.002)
        for index in range(TABLES):
            db.create_table(
                f"t{index}",
                [("id", ColumnType.INT), ("v", ColumnType.INT)],
                primary_key=("id",),
            )
        db.save()
        manager = TxnManager(db)

        def worker(table_index):
            for step in range(TXNS_PER_TABLE):
                with manager.begin() as txn:
                    txn.sql(f"INSERT INTO t{table_index} VALUES ({step}, 0)")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(TABLES)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        # with alpha 0.25, ~5 uncontended commits decay 1.0 under 0.2;
        # run a longer serial tail, then check the last commit was fast
        for step in range(12):
            with manager.begin() as txn:
                txn.sql(f"INSERT INTO t0 VALUES ({100 + step}, 0)")
        waits0, fast0 = adaptive_counters()
        with manager.begin() as txn:
            txn.sql("INSERT INTO t0 VALUES (999, 0)")
        waits, fast = adaptive_counters()
        db.close()
        assert waits == waits0, "the EWMA never decayed"
        assert fast == fast0 + 1
