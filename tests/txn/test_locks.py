"""LockTable semantics: exclusivity, re-entrancy, deadlock, timeout."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError, TxnError
from repro.rdb import ColumnType, Database
from repro.txn import LockTable, TxnManager


class TestLockTable:
    def test_exclusive_and_reentrant(self):
        locks = LockTable(timeout=0.5)
        locks.acquire(1, "t")
        locks.acquire(1, "t")  # re-entrant
        locks.release(1, "t")
        assert locks.held_by(1) == ["t"]  # still held once
        locks.release(1, "t")
        assert locks.held_by(1) == []

    def test_release_without_hold_raises(self):
        locks = LockTable()
        with pytest.raises(TxnError):
            locks.release(7, "t")

    def test_contended_acquire_waits_for_release(self):
        locks = LockTable(timeout=5.0)
        locks.acquire(1, "t")
        acquired = threading.Event()

        def contender():
            locks.acquire(2, "t")
            acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        locks.release(1, "t")
        thread.join(timeout=5.0)
        assert acquired.is_set()
        locks.release_all(2)

    def test_timeout_on_stuck_owner(self):
        locks = LockTable(timeout=0.2)
        locks.acquire(1, "t")
        start = time.monotonic()
        with pytest.raises(LockTimeoutError):
            locks.acquire(2, "t")
        assert time.monotonic() - start < 2.0

    def test_two_party_deadlock_detected(self):
        locks = LockTable(timeout=10.0)
        locks.acquire(1, "a")
        locks.acquire(2, "b")
        outcome = {}

        def second():
            try:
                locks.acquire(2, "a")  # blocks on txn 1
                outcome["second"] = "acquired"
            except DeadlockError:
                outcome["second"] = "deadlock"
                locks.release_all(2)

        thread = threading.Thread(target=second)
        thread.start()
        time.sleep(0.05)
        # txn 1 requesting b closes the cycle: exactly one side is the
        # victim, and it is detected well inside the timeout
        start = time.monotonic()
        try:
            locks.acquire(1, "b")
            outcome["first"] = "acquired"
        except DeadlockError:
            outcome["first"] = "deadlock"
            locks.release_all(1)
        thread.join(timeout=10.0)
        assert time.monotonic() - start < 5.0
        assert sorted(outcome.values()) == ["acquired", "deadlock"]
        locks.release_all(1)
        locks.release_all(2)

    def test_three_party_cycle_detected(self):
        locks = LockTable(timeout=10.0)
        for txn, resource in ((1, "a"), (2, "b"), (3, "c")):
            locks.acquire(txn, resource)
        results = []

        def chain(txn, resource):
            try:
                locks.acquire(txn, resource)
                results.append("acquired")
            except DeadlockError:
                results.append("deadlock")
            finally:
                # end of transaction either way, so the remaining
                # waiters in the cycle can drain
                locks.release_all(txn)

        threads = [
            threading.Thread(target=chain, args=args)
            for args in ((1, "b"), (2, "c"))
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        chain(3, "a")  # closes the 3-cycle
        for thread in threads:
            thread.join(timeout=10.0)
        assert results.count("deadlock") >= 1
        for txn in (1, 2, 3):
            locks.release_all(txn)

    def test_release_all_returns_held_resources(self):
        locks = LockTable()
        locks.acquire(5, "x")
        locks.acquire(5, "y")
        assert sorted(locks.release_all(5)) == ["x", "y"]
        assert locks.release_all(5) == []


class TestManagerDeadlock:
    def test_injected_lock_cycle_broken_within_timeout(self):
        """Acceptance criterion: two transactions lock two tables in
        opposite order; the cycle is broken by a DeadlockError well
        inside the lock timeout and the survivor commits."""
        db = Database()
        for name in ("left", "right"):
            db.create_table(
                name, [("id", ColumnType.INT)], primary_key=("id",)
            )
        manager = TxnManager(db, lock_timeout=30.0)
        victims = []
        barrier = threading.Barrier(2)

        def worker(first, second):
            txn = manager.begin()
            try:
                txn.sql(f"INSERT INTO {first} VALUES ({txn.id})")
                barrier.wait()
                txn.sql(f"INSERT INTO {second} VALUES ({txn.id})")
                txn.commit()
            except DeadlockError:
                victims.append(txn.id)
                txn.abort()

        start = time.monotonic()
        threads = [
            threading.Thread(target=worker, args=pair)
            for pair in (("left", "right"), ("right", "left"))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20.0)
        elapsed = time.monotonic() - start
        assert elapsed < 10.0, f"cycle not broken promptly ({elapsed:.1f}s)"
        assert len(victims) == 1, victims
        # the survivor committed both inserts; the victim's were undone
        left = db.sql("SELECT id FROM left").rows
        right = db.sql("SELECT id FROM right").rows
        assert left == right and len(left) == 1
        assert manager.stats()["active"] == 0
        assert manager.locks.stats() == {"held": 0, "waiting": 0}
