"""Tests for day-granularity date handling and the 'now' marker."""

import datetime

import pytest

from repro.util import timeutil


def test_epoch_is_zero():
    assert timeutil.parse_date("1970-01-01") == 0


def test_roundtrip_parse_format():
    assert timeutil.format_date(timeutil.parse_date("1995-06-01")) == "1995-06-01"


def test_parse_now_label():
    assert timeutil.parse_date("now") == timeutil.FOREVER


def test_forever_formats_as_end_of_time():
    assert timeutil.format_date(timeutil.FOREVER) == "9999-12-31"


def test_forever_matches_date():
    assert timeutil.days_to_date(timeutil.FOREVER) == datetime.date(9999, 12, 31)


def test_is_now():
    assert timeutil.is_now(timeutil.FOREVER)
    assert not timeutil.is_now(0)


def test_external_date_maps_now_to_current():
    today = timeutil.parse_date("2005-03-02")
    assert timeutil.external_date(timeutil.FOREVER, today) == "2005-03-02"


def test_external_date_passes_plain_dates():
    today = timeutil.parse_date("2005-03-02")
    plain = timeutil.parse_date("1999-01-15")
    assert timeutil.external_date(plain, today) == "1999-01-15"


def test_date_ordering_is_preserved():
    early = timeutil.parse_date("1994-05-06")
    late = timeutil.parse_date("1995-05-06")
    assert early < late < timeutil.FOREVER


def test_parse_date_strips_whitespace():
    assert timeutil.parse_date(" 1970-01-02 ") == 1


def test_parse_bad_date_raises():
    with pytest.raises(ValueError):
        timeutil.parse_date("not-a-date")
