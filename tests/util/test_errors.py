"""The exception hierarchy: every library error is a ReproError."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.StorageError,
    errors.PageFullError,
    errors.IndexError_,
    errors.CatalogError,
    errors.IntegrityError,
    errors.SqlError,
    errors.SqlSyntaxError,
    errors.SqlPlanError,
    errors.XmlError,
    errors.XPathError,
    errors.XQueryError,
    errors.XQuerySyntaxError,
    errors.XQueryTypeError,
    errors.TranslationError,
    errors.UnsupportedQueryError,
    errors.ArchisError,
    errors.CompressionError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)


def test_specific_hierarchies():
    assert issubclass(errors.PageFullError, errors.StorageError)
    assert issubclass(errors.SqlSyntaxError, errors.SqlError)
    assert issubclass(errors.SqlPlanError, errors.SqlError)
    assert issubclass(errors.XQuerySyntaxError, errors.XQueryError)
    assert issubclass(errors.XQueryTypeError, errors.XQueryError)
    assert issubclass(errors.UnsupportedQueryError, errors.TranslationError)
    assert issubclass(errors.CompressionError, errors.ArchisError)


def test_catch_all_from_public_api():
    """A caller can guard any library call with one except clause."""
    from repro.rdb import Database

    db = Database()
    with pytest.raises(errors.ReproError):
        db.table("missing")
    with pytest.raises(errors.ReproError):
        db.sql("SELEKT")
    from repro.xquery import parse_xquery

    with pytest.raises(errors.ReproError):
        parse_xquery("for $x")
