"""Tests for the interval algebra underlying every temporal operator."""

import pytest

from repro.util.intervals import (
    Interval,
    coalesce,
    coalesce_valued,
    restructure,
    sweep_aggregate,
)
from repro.util.timeutil import FOREVER, parse_date


def iv(start: str, end: str) -> Interval:
    return Interval.from_strings(start, end)


class TestConstruction:
    def test_valid(self):
        interval = iv("1995-01-01", "1995-05-31")
        assert interval.start == parse_date("1995-01-01")

    def test_reversed_raises(self):
        with pytest.raises(ValueError):
            Interval(10, 5)

    def test_point(self):
        point = Interval.point(100)
        assert point.start == point.end == 100

    def test_now_interval_is_current(self):
        assert iv("1996-02-01", "now").is_current()

    def test_str_renders_dates(self):
        assert str(iv("1995-01-01", "1995-05-31")) == "[1995-01-01, 1995-05-31]"


class TestRelations:
    def test_overlaps_true(self):
        assert iv("1995-01-01", "1995-06-30").overlaps(iv("1995-06-01", "1995-12-31"))

    def test_overlaps_shared_single_day(self):
        assert iv("1995-01-01", "1995-06-01").overlaps(iv("1995-06-01", "1995-12-31"))

    def test_overlaps_false(self):
        assert not iv("1995-01-01", "1995-05-31").overlaps(iv("1995-06-01", "1995-12-31"))

    def test_meets_adjacent_days(self):
        assert iv("1995-01-01", "1995-05-31").meets(iv("1995-06-01", "1995-12-31"))

    def test_meets_is_directional(self):
        assert not iv("1995-06-01", "1995-12-31").meets(iv("1995-01-01", "1995-05-31"))

    def test_contains(self):
        outer = iv("1994-01-01", "1998-12-31")
        inner = iv("1995-01-01", "1995-05-31")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_self(self):
        interval = iv("1995-01-01", "1995-05-31")
        assert interval.contains(interval)

    def test_contains_point(self):
        assert iv("1994-01-01", "1998-12-31").contains_point(parse_date("1994-05-06"))
        assert not iv("1994-01-01", "1998-12-31").contains_point(parse_date("1999-01-01"))

    def test_precedes(self):
        assert iv("1995-01-01", "1995-05-31").precedes(iv("1995-06-01", "1995-12-31"))
        assert not iv("1995-01-01", "1995-06-01").precedes(iv("1995-06-01", "1995-12-31"))

    def test_equals(self):
        assert iv("1995-01-01", "1995-05-31").equals(iv("1995-01-01", "1995-05-31"))

    def test_intersect_overlapping(self):
        shared = iv("1995-01-01", "1995-06-30").intersect(iv("1995-06-01", "1995-12-31"))
        assert shared == iv("1995-06-01", "1995-06-30")

    def test_intersect_disjoint_is_none(self):
        assert iv("1995-01-01", "1995-05-31").intersect(iv("1996-01-01", "1996-12-31")) is None

    def test_timespan_inclusive(self):
        assert iv("1995-01-01", "1995-01-01").timespan() == 1
        assert iv("1995-01-01", "1995-01-31").timespan() == 31


class TestCoalesce:
    def test_merges_adjacent(self):
        merged = coalesce([iv("1995-01-01", "1995-05-31"), iv("1995-06-01", "1995-09-30")])
        assert merged == [iv("1995-01-01", "1995-09-30")]

    def test_merges_overlapping(self):
        merged = coalesce([iv("1995-01-01", "1995-07-31"), iv("1995-06-01", "1995-09-30")])
        assert merged == [iv("1995-01-01", "1995-09-30")]

    def test_keeps_gaps(self):
        merged = coalesce([iv("1995-01-01", "1995-05-31"), iv("1995-07-01", "1995-09-30")])
        assert len(merged) == 2

    def test_unsorted_input(self):
        merged = coalesce([iv("1995-06-01", "1995-09-30"), iv("1995-01-01", "1995-05-31")])
        assert merged == [iv("1995-01-01", "1995-09-30")]

    def test_empty(self):
        assert coalesce([]) == []

    def test_valued_groups_per_value(self):
        # Bob's salary history: 70000 spans two adjacent periods -> grouped.
        pairs = [
            (60000, iv("1995-01-01", "1995-05-31")),
            (70000, iv("1995-06-01", "1995-09-30")),
            (70000, iv("1995-10-01", "1996-01-31")),
        ]
        grouped = coalesce_valued(pairs)
        assert grouped == [
            (60000, iv("1995-01-01", "1995-05-31")),
            (70000, iv("1995-06-01", "1996-01-31")),
        ]

    def test_valued_same_value_with_gap_stays_split(self):
        pairs = [
            ("d01", iv("1995-01-01", "1995-05-31")),
            ("d01", iv("1996-01-01", "1996-05-31")),
        ]
        assert len(coalesce_valued(pairs)) == 2


class TestRestructure:
    def test_overlapped_periods(self):
        dept = [iv("1995-01-01", "1995-09-30"), iv("1995-10-01", "1996-12-31")]
        title = [iv("1995-01-01", "1995-09-30"), iv("1995-10-01", "1996-01-31")]
        out = restructure(dept, title)
        # Periods where both held, coalesced: the entire 1995-01-01..1996-01-31.
        assert out == [iv("1995-01-01", "1996-01-31")]

    def test_no_overlap(self):
        assert restructure([iv("1995-01-01", "1995-01-31")], [iv("1996-01-01", "1996-01-31")]) == []


class TestSweepAggregate:
    def test_average_of_single_interval(self):
        out = sweep_aggregate([(100.0, iv("1995-01-01", "1995-12-31"))])
        assert out == [(100.0, iv("1995-01-01", "1995-12-31"))]

    def test_average_changes_at_overlap(self):
        out = sweep_aggregate(
            [
                (100.0, iv("1995-01-01", "1995-12-31")),
                (200.0, iv("1995-07-01", "1995-12-31")),
            ]
        )
        assert out == [
            (100.0, iv("1995-01-01", "1995-06-30")),
            (150.0, iv("1995-07-01", "1995-12-31")),
        ]

    def test_sum(self):
        out = sweep_aggregate(
            [
                (100.0, iv("1995-01-01", "1995-12-31")),
                (200.0, iv("1995-07-01", "1995-12-31")),
            ],
            kind="sum",
        )
        assert out[-1] == (300.0, iv("1995-07-01", "1995-12-31"))

    def test_count(self):
        out = sweep_aggregate(
            [
                (1.0, iv("1995-01-01", "1995-06-30")),
                (1.0, iv("1995-04-01", "1995-12-31")),
            ],
            kind="count",
        )
        assert (2.0, iv("1995-04-01", "1995-06-30")) in out

    def test_max_tracks_live_multiset(self):
        out = sweep_aggregate(
            [
                (100.0, iv("1995-01-01", "1995-12-31")),
                (200.0, iv("1995-04-01", "1995-06-30")),
            ],
            kind="max",
        )
        assert out == [
            (100.0, iv("1995-01-01", "1995-03-31")),
            (200.0, iv("1995-04-01", "1995-06-30")),
            (100.0, iv("1995-07-01", "1995-12-31")),
        ]

    def test_open_now_interval_clamped(self):
        out = sweep_aggregate([(50.0, Interval(0, FOREVER))])
        assert out == [(50.0, Interval(0, FOREVER))]

    def test_empty_input(self):
        assert sweep_aggregate([]) == []

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            sweep_aggregate([(1.0, Interval(0, 1))], kind="median")

    def test_gap_between_intervals_produces_no_phantom_period(self):
        out = sweep_aggregate(
            [
                (10.0, iv("1995-01-01", "1995-01-31")),
                (20.0, iv("1995-03-01", "1995-03-31")),
            ]
        )
        assert out == [
            (10.0, iv("1995-01-01", "1995-01-31")),
            (20.0, iv("1995-03-01", "1995-03-31")),
        ]
